"""Decoder-only transformer substrate executed in NumPy.

The model is deliberately small-scale and synthetic-weight friendly: the
accelerator study needs exact layer shapes, a working KV cache and a faithful
prefill/decode split, not trained weights.  A quantised execution mode routes
every linear projection through :class:`repro.quant.QuantizedLinear` so that
INT8 (or INT4) inference fidelity can be compared against the float model
(Table 2) and so that MCBP's BRCR path can be exercised end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .attention import (
    AttentionOutput,
    KVCache,
    MultiHeadAttention,
    causal_mask,
    ragged_selection_mask,
)
from .config import ModelConfig
from .layers import ACTIVATIONS, Embedding, Linear, layer_norm, rms_norm, softmax

__all__ = ["DecoderLayer", "TransformerModel", "QuantizedTransformer", "ForwardStats"]

KeyPredictor = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class ForwardStats:
    """Aggregated statistics of one forward pass (per layer sums).

    ``row_keys_attended`` / ``row_keys_total`` optionally carry the same
    counts broken down per processed row (``(tokens_processed,)`` int64,
    summed over layers).  The serving prefix cache stores them per prompt
    page so cache-hit sessions can credit skipped rows' statistics exactly;
    they are excluded from equality/repr so ``ForwardStats`` comparisons
    keep meaning "same scalar totals".
    """

    keys_attended: int = 0
    keys_total: int = 0
    tokens_processed: int = 0
    row_keys_attended: Optional[np.ndarray] = field(
        default=None, compare=False, repr=False
    )
    row_keys_total: Optional[np.ndarray] = field(
        default=None, compare=False, repr=False
    )

    @property
    def attention_density(self) -> float:
        return self.keys_attended / self.keys_total if self.keys_total else 1.0

    @property
    def attention_sparsity(self) -> float:
        return 1.0 - self.attention_density

    def merge(self, attn: AttentionOutput) -> None:
        self.keys_attended += attn.keys_attended
        self.keys_total += attn.keys_total
        self.add_rows(
            getattr(attn, "row_keys_attended", None),
            getattr(attn, "row_keys_total", None),
        )

    def add_rows(
        self, row_attended: Optional[np.ndarray], row_total: Optional[np.ndarray]
    ) -> None:
        """Accumulate one layer's per-row counts (no-op when unavailable)."""
        if row_attended is None or row_total is None:
            return
        row_attended = np.asarray(row_attended, dtype=np.int64)
        row_total = np.asarray(row_total, dtype=np.int64)
        if self.row_keys_attended is None:
            self.row_keys_attended = row_attended.copy()
            self.row_keys_total = row_total.copy()
        else:
            self.row_keys_attended = self.row_keys_attended + row_attended
            self.row_keys_total = self.row_keys_total + row_total


class DecoderLayer:
    """One pre-norm decoder block: attention + feed-forward network."""

    def __init__(self, config: ModelConfig, seed: int = 0) -> None:
        self.config = config
        h = config.hidden_size
        self.attention = MultiHeadAttention(h, config.n_heads, seed=seed * 10)
        self.ffn_up = Linear.random(h, config.ffn_hidden, seed=seed * 10 + 5)
        self.ffn_down = Linear.random(config.ffn_hidden, h, seed=seed * 10 + 6)
        self.activation = ACTIVATIONS[config.activation]
        self.norm_fn = rms_norm if config.norm == "rmsnorm" else layer_norm

    def linear_layers(self) -> Dict[str, Linear]:
        """Named float linear layers of this block (for quantisation)."""
        return {
            "wq": self.attention.wq,
            "wk": self.attention.wk,
            "wv": self.attention.wv,
            "wo": self.attention.wo,
            "ffn_up": self.ffn_up,
            "ffn_down": self.ffn_down,
        }

    def __call__(
        self,
        hidden: np.ndarray,
        cache: Optional[KVCache] = None,
        predictor: Optional[KeyPredictor] = None,
    ) -> Tuple[np.ndarray, AttentionOutput]:
        normed = self.norm_fn(hidden)
        attn = self.attention(normed, cache=cache, predictor=predictor)
        hidden = hidden + attn.output
        normed = self.norm_fn(hidden)
        ffn = self.ffn_down(self.activation(self.ffn_up(normed)))
        hidden = hidden + ffn
        return hidden, attn


class TransformerModel:
    """A float decoder-only transformer with synthetic Gaussian weights."""

    def __init__(self, config: ModelConfig, seed: int = 0) -> None:
        self.config = config
        self.embedding = Embedding.random(
            config.vocab_size, config.hidden_size, seed=seed
        )
        self.layers = [
            DecoderLayer(config, seed=seed + i + 1) for i in range(config.n_layers)
        ]
        self.lm_head = Linear.random(
            config.hidden_size, config.vocab_size, seed=seed + 999
        )
        self.norm_fn = rms_norm if config.norm == "rmsnorm" else layer_norm

    def new_cache(self, arena=None) -> List[KVCache]:
        """Fresh per-layer KV caches (handles onto ``arena`` when given)."""
        if arena is not None:
            return arena.new_session_caches()
        return [KVCache() for _ in self.layers]

    def forward(
        self,
        token_ids: Sequence[int],
        caches: Optional[List[KVCache]] = None,
        predictor: Optional[KeyPredictor] = None,
    ) -> Tuple[np.ndarray, ForwardStats]:
        """Run the model over ``token_ids`` and return logits ``(seq, vocab)``."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        hidden = self.embedding(token_ids)
        stats = ForwardStats(tokens_processed=int(token_ids.size))
        for i, layer in enumerate(self.layers):
            cache = caches[i] if caches is not None else None
            hidden, attn = layer(hidden, cache=cache, predictor=predictor)
            stats.merge(attn)
        hidden = self.norm_fn(hidden)
        logits = self.lm_head(hidden)
        return logits, stats

    def hidden_states(self, token_ids: Sequence[int]) -> np.ndarray:
        """Final-layer hidden states (used as a fidelity reference)."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        hidden = self.embedding(token_ids)
        for layer in self.layers:
            hidden, _ = layer(hidden)
        return self.norm_fn(hidden)

    def named_weight_matrices(self) -> Dict[str, np.ndarray]:
        """All GEMM weight matrices keyed ``layer{i}.{name}`` (plus the LM head)."""
        out: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for name, lin in layer.linear_layers().items():
                out[f"layer{i}.{name}"] = lin.weight
        out["lm_head"] = self.lm_head.weight
        return out


class QuantizedTransformer:
    """Integer-quantised execution of a :class:`TransformerModel`.

    Every linear projection is replaced by a calibrated
    :class:`repro.quant.QuantizedLinear`; non-linear operators stay in float,
    matching the paper's deployment (GEMMs INT8, softmax/norm FP16).
    ``sparse_predictor`` plugs a top-k / BGPP key selector into attention.

    Because every GEMM operand is an exact integer product, the model offers
    a fused serving path: :meth:`forward_batch` advances ``B`` independent
    decode streams through **one** forward pass (one GEMM per projection for
    the whole batch, one batched attention per layer) with bit-identical
    results to stepping each stream alone.  :meth:`bind_engine` additionally
    routes every integer product through a shared
    :class:`repro.core.engine.MCBPEngine`, so the BSTC-compressed weights are
    decoded at most once per layer via the decoded-plane cache and the
    engine's traffic counters account for the serving run.
    """

    def __init__(
        self,
        model: TransformerModel,
        weight_bits: int = 8,
        activation_bits: int = 8,
        calibration_tokens: Optional[Sequence[int]] = None,
        clip_percentile: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        from ..quant.calibration import calibrate_linear

        self.model = model
        self.config = model.config
        self.weight_bits = weight_bits
        self.activation_bits = activation_bits
        self.engine = None  # set by bind_engine()
        rng = np.random.default_rng(seed)
        if calibration_tokens is None:
            calibration_tokens = rng.integers(
                0, model.config.vocab_size, size=min(64, model.config.max_seq_len)
            )
        # Calibrate each linear layer against the float model's activations at
        # that point in the network.
        calib_hidden = model.embedding(np.asarray(calibration_tokens, dtype=np.int64))
        self.quant_layers: List[Dict[str, object]] = []
        hidden = calib_hidden
        for layer in model.layers:
            normed = layer.norm_fn(hidden)
            entry: Dict[str, object] = {}
            for name in ("wq", "wk", "wv"):
                lin = layer.linear_layers()[name]
                entry[name] = calibrate_linear(
                    lin.weight, normed, weight_bits=weight_bits,
                    activation_bits=activation_bits, clip_percentile=clip_percentile,
                )
            attn = layer.attention
            context = attn.merged_context(attn.wq(normed), attn.wk(normed), attn.wv(normed))
            entry["wo"] = calibrate_linear(
                attn.wo.weight, context, weight_bits=weight_bits,
                activation_bits=activation_bits, clip_percentile=clip_percentile,
            )
            hidden = hidden + attn.wo(context)
            normed2 = layer.norm_fn(hidden)
            entry["ffn_up"] = calibrate_linear(
                layer.ffn_up.weight, normed2, weight_bits=weight_bits,
                activation_bits=activation_bits, clip_percentile=clip_percentile,
            )
            up = layer.activation(layer.ffn_up(normed2))
            entry["ffn_down"] = calibrate_linear(
                layer.ffn_down.weight, up, weight_bits=weight_bits,
                activation_bits=activation_bits, clip_percentile=clip_percentile,
            )
            hidden = hidden + layer.ffn_down(up)
            self.quant_layers.append(entry)
        self.lm_head = calibrate_linear(
            model.lm_head.weight, model.norm_fn(hidden), weight_bits=weight_bits,
            activation_bits=activation_bits, clip_percentile=clip_percentile,
        )

    def quantized_weight_matrices(self) -> Dict[str, np.ndarray]:
        """Integer weight matrices keyed like ``TransformerModel.named_weight_matrices``."""
        out: Dict[str, np.ndarray] = {}
        for i, entry in enumerate(self.quant_layers):
            for name, qlin in entry.items():
                out[f"layer{i}.{name}"] = qlin.weight_q  # type: ignore[union-attr]
        out["lm_head"] = self.lm_head.weight_q
        return out

    def bind_engine(self, engine, prefix: str = "") -> None:
        """Route every integer GEMM through a shared :class:`MCBPEngine`.

        Registers each quantised weight matrix (BSTC-compressed) under
        ``{prefix}layer{i}.{name}`` / ``{prefix}lm_head`` and makes
        :meth:`forward` / :meth:`forward_batch` fetch their integer products
        from :meth:`repro.core.engine.MCBPEngine.matmul`: the decoded-plane
        LRU cache then pays at most one BSTC decode per matrix no matter how
        many steps or co-resident streams reuse it, and the engine's
        cache/traffic counters describe the serving run.  Outputs are
        bit-identical to the unbound model (the decode round-trip is exact).
        """
        for name, weight_q in self.quantized_weight_matrices().items():
            engine.register_weight(prefix + name, weight_q)
        self.engine = engine
        self._engine_prefix = prefix

    def _qlin_forward(self, qlin, name: str, x: np.ndarray) -> np.ndarray:
        """One quantised projection, routed through the bound engine if any."""
        if self.engine is None:
            out, _ = qlin.forward(x)
        else:
            full_name = self._engine_prefix + name
            out, _ = qlin.forward(
                x, product_fn=lambda xq: self.engine.matmul(full_name, xq)
            )
        return out

    def forward(
        self,
        token_ids: Sequence[int],
        caches: Optional[List[KVCache]] = None,
        predictor: Optional[KeyPredictor] = None,
    ) -> Tuple[np.ndarray, ForwardStats]:
        """Quantised forward pass returning float logits ``(seq, vocab)``."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        hidden = self.model.embedding(token_ids)
        stats = ForwardStats(tokens_processed=int(token_ids.size))
        for i, (layer, qentry) in enumerate(zip(self.model.layers, self.quant_layers)):
            normed = layer.norm_fn(hidden)
            attn_mod = layer.attention
            q = self._qlin_forward(qentry["wq"], f"layer{i}.wq", normed)
            k = self._qlin_forward(qentry["wk"], f"layer{i}.wk", normed)
            v = self._qlin_forward(qentry["wv"], f"layer{i}.wv", normed)

            attn_out = self._attention(attn_mod, q, k, v, caches, layer, predictor)
            proj = self._qlin_forward(qentry["wo"], f"layer{i}.wo", attn_out.output)
            hidden = hidden + proj
            stats.merge(attn_out)

            normed2 = layer.norm_fn(hidden)
            up = self._qlin_forward(qentry["ffn_up"], f"layer{i}.ffn_up", normed2)
            act = layer.activation(up)
            down = self._qlin_forward(qentry["ffn_down"], f"layer{i}.ffn_down", act)
            hidden = hidden + down
        hidden = self.model.norm_fn(hidden)
        logits = self._qlin_forward(self.lm_head, "lm_head", hidden)
        return logits, stats

    def forward_batch(
        self,
        tokens: Sequence[int],
        caches_list: Sequence[List[KVCache]],
        predictor: Optional[KeyPredictor] = None,
    ) -> Tuple[np.ndarray, List[ForwardStats]]:
        """One fused decode step for ``B`` independent generation streams.

        ``tokens[b]`` is stream ``b``'s newest accepted token and
        ``caches_list[b]`` its per-layer KV caches.  The step stacks the
        streams into a ``(B, hidden)`` activation matrix and runs **one**
        quantised forward pass: each weight matrix is applied once to the
        whole batch (one integer GEMM -- and, with a bound engine, at most
        one BSTC decode -- per projection per step) and attention runs as one
        ragged batched pass per layer over the per-stream caches (served
        zero-copy from the shared pool when the caches are handles onto one
        :class:`~repro.serve.kv_arena.PagedKVArena`).  Every GEMM
        operand is an exact integer product and every float op is row-local,
        so logits and per-stream statistics are bit-identical to stepping the
        streams one at a time through :meth:`forward`.

        Returns float logits ``(B, vocab)`` (one next-token row per stream)
        and one :class:`ForwardStats` per stream.
        """
        tokens = np.asarray(tokens, dtype=np.int64).reshape(-1)
        n_streams = int(tokens.size)
        if len(caches_list) != n_streams:
            raise ValueError(
                f"expected {n_streams} cache lists, got {len(caches_list)}"
            )
        hidden = self.model.embedding(tokens)  # (B, hidden)
        stats = [ForwardStats(tokens_processed=1) for _ in range(n_streams)]
        for i, (layer, qentry) in enumerate(zip(self.model.layers, self.quant_layers)):
            normed = layer.norm_fn(hidden)
            q = self._qlin_forward(qentry["wq"], f"layer{i}.wq", normed)
            k = self._qlin_forward(qentry["wk"], f"layer{i}.wk", normed)
            v = self._qlin_forward(qentry["wv"], f"layer{i}.wv", normed)

            attn = layer.attention.decode_batch(
                q, k, v, [caches[i] for caches in caches_list], predictor
            )
            proj = self._qlin_forward(qentry["wo"], f"layer{i}.wo", attn.output)
            hidden = hidden + proj
            for b in range(n_streams):
                stats[b].keys_attended += int(attn.keys_attended[b])
                stats[b].keys_total += int(attn.keys_total[b])

            normed2 = layer.norm_fn(hidden)
            up = self._qlin_forward(qentry["ffn_up"], f"layer{i}.ffn_up", normed2)
            act = layer.activation(up)
            down = self._qlin_forward(qentry["ffn_down"], f"layer{i}.ffn_down", act)
            hidden = hidden + down
        hidden = self.model.norm_fn(hidden)
        logits = self._qlin_forward(self.lm_head, "lm_head", hidden)
        return logits, stats

    def prefill_batch(
        self,
        chunks: Sequence[Sequence[int]],
        caches_list: Sequence[List[KVCache]],
        predictor: Optional[KeyPredictor] = None,
        total_lens: Optional[Sequence[int]] = None,
        row_logits_for: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, List[ForwardStats]]:
        """One fused pass over ``B`` ragged prompt chunks (and decode rows).

        ``chunks[b]`` is stream ``b``'s next batch of accepted tokens -- a
        prompt chunk mid-prefill, or a single token for a co-scheduled decode
        stream -- and ``caches_list[b]`` its per-layer KV caches holding the
        stream's earlier tokens.  All chunk rows are stacked into one
        ``(total_rows, hidden)`` activation matrix, so each weight matrix is
        applied **once** per step for the whole mixed batch (one integer GEMM
        -- and, with a bound engine, at most one BSTC decode -- per
        projection) and attention runs as one ragged chunked pass per layer
        (:meth:`MultiHeadAttention.prefill_batch`).

        ``total_lens[b]`` is the final length of the serial forward stream
        ``b`` is reproducing: the full prompt length for a chunked prefill,
        the post-append context length for a decode row (the default).  Every
        float op is row-local and every softmax reduces over exactly the
        serial pass's width, so logits and per-stream statistics are
        bit-identical to running each stream's whole prompt through
        :meth:`forward` in one shot -- regardless of chunk boundaries or
        batch composition.

        Returns float logits ``(B, vocab)`` (one row per stream, the logits
        of that stream's **last chunk row**) and one :class:`ForwardStats`
        per stream covering only this chunk's rows.

        ``row_logits_for`` names stream indices whose *per-row* logits the
        caller needs -- the speculative verify pass samples one token after
        every chunk row, not just the last.  When given, a third return value
        is appended: ``{b: (row_counts[b], vocab) logits}`` for exactly those
        streams, produced by one extra LM-head projection over the selected
        rows (the LM head is row-local, so each row's logits equal what a
        serial forward ending at that row would produce).
        """
        chunks = [np.asarray(c, dtype=np.int64).reshape(-1) for c in chunks]
        n_streams = len(chunks)
        if n_streams == 0:
            raise ValueError("prefill_batch needs at least one stream")
        if any(c.size == 0 for c in chunks):
            raise ValueError("every chunk must contain at least one token")
        if len(caches_list) != n_streams:
            raise ValueError(
                f"expected {n_streams} cache lists, got {len(caches_list)}"
            )
        row_counts = np.array([c.size for c in chunks], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(row_counts)])
        if total_lens is not None:
            total_lens = np.asarray(total_lens, dtype=np.int64)
        hidden = self.model.embedding(np.concatenate(chunks))
        stats = [ForwardStats(tokens_processed=int(n)) for n in row_counts]
        for i, (layer, qentry) in enumerate(zip(self.model.layers, self.quant_layers)):
            normed = layer.norm_fn(hidden)
            q = self._qlin_forward(qentry["wq"], f"layer{i}.wq", normed)
            k = self._qlin_forward(qentry["wk"], f"layer{i}.wk", normed)
            v = self._qlin_forward(qentry["wv"], f"layer{i}.wv", normed)

            attn = layer.attention.prefill_batch(
                q,
                k,
                v,
                row_counts,
                [caches[i] for caches in caches_list],
                total_lens=total_lens,
                predictor=predictor,
            )
            proj = self._qlin_forward(qentry["wo"], f"layer{i}.wo", attn.output)
            hidden = hidden + proj
            for b in range(n_streams):
                stats[b].keys_attended += int(attn.keys_attended[b])
                stats[b].keys_total += int(attn.keys_total[b])
                if attn.row_keys_attended is not None:
                    stats[b].add_rows(
                        attn.row_keys_attended[b], attn.row_keys_total[b]
                    )

            normed2 = layer.norm_fn(hidden)
            up = self._qlin_forward(qentry["ffn_up"], f"layer{i}.ffn_up", normed2)
            act = layer.activation(up)
            down = self._qlin_forward(qentry["ffn_down"], f"layer{i}.ffn_down", act)
            hidden = hidden + down
        hidden = self.model.norm_fn(hidden)
        # only each stream's last chunk row can be sampled from; the LM head
        # is row-local, so projecting just those B rows is exact
        last_rows = hidden[offsets[1:] - 1]
        logits = self._qlin_forward(self.lm_head, "lm_head", last_rows)
        if row_logits_for is None:
            return logits, stats
        sel = [int(b) for b in row_logits_for]
        if not sel:
            return logits, stats, {}
        rows = np.concatenate(
            [hidden[offsets[b] : offsets[b + 1]] for b in sel]
        )
        all_logits = self._qlin_forward(self.lm_head, "lm_head", rows)
        row_logits: Dict[int, np.ndarray] = {}
        pos = 0
        for b in sel:
            n = int(row_counts[b])
            row_logits[b] = all_logits[pos : pos + n]
            pos += n
        return logits, stats, row_logits

    def _attention(
        self,
        attn_mod: MultiHeadAttention,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        caches: Optional[List[KVCache]],
        layer: DecoderLayer,
        predictor: Optional[KeyPredictor],
    ) -> AttentionOutput:
        """Attention on pre-projected Q/K/V (projections already quantised)."""
        layer_index = self.model.layers.index(layer)
        cache = caches[layer_index] if caches is not None else None
        if cache is not None:
            cache.append(k, v)
            k_all, v_all = cache.keys, cache.values
        else:
            k_all, v_all = k, v

        qh = attn_mod._split_heads(np.atleast_2d(q))
        kh = attn_mod._split_heads(np.atleast_2d(k_all))
        vh = attn_mod._split_heads(np.atleast_2d(v_all))
        n_queries, n_keys = qh.shape[1], kh.shape[1]
        mask = causal_mask(n_queries, n_keys)

        selection_mask = np.ones((n_queries, n_keys), dtype=bool)
        if predictor is not None:
            selection_mask = ragged_selection_mask(
                predictor, np.atleast_2d(q), np.atleast_2d(k_all), mask
            )
        full_mask = mask & selection_mask

        scale = 1.0 / np.sqrt(attn_mod.head_dim)
        logits = np.einsum("hqd,hkd->hqk", qh, kh) * scale
        logits = np.where(full_mask[None, :, :], logits, -np.inf)
        probs = softmax(logits, axis=-1)
        context = np.einsum("hqk,hkd->hqd", probs, vh)
        merged = attn_mod._merge_heads(context)
        row_attended = full_mask.sum(axis=1).astype(np.int64)
        row_total = mask.sum(axis=1).astype(np.int64)
        keys_attended = int(row_attended.sum())
        keys_total = int(row_total.sum())
        return AttentionOutput(
            output=merged,
            keys_attended=keys_attended,
            keys_total=keys_total,
            selected_fraction=keys_attended / keys_total if keys_total else 1.0,
            row_keys_attended=row_attended,
            row_keys_total=row_total,
        )

    def new_cache(self, arena=None) -> List[KVCache]:
        return self.model.new_cache(arena=arena)
