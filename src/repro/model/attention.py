"""Multi-head self-attention with KV cache and optional sparse prediction.

Attention is where MCBP's BGPP operates: before the "formal compute" stage, a
predictor selects the vital keys for each query and the full-precision
``QK^T`` / softmax / ``PV`` computation only touches those keys (paper §2.2,
Fig. 3).  The predictor is pluggable so that the same module can run dense
attention, value-level top-k and bit-grained progressive prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from .layers import Linear, softmax

__all__ = ["KVCache", "AttentionOutput", "MultiHeadAttention", "causal_mask"]

# A predictor maps (query_row, keys) -> selected key indices.
KeyPredictor = Callable[[np.ndarray, np.ndarray], np.ndarray]


def causal_mask(n_queries: int, n_keys: int) -> np.ndarray:
    """Boolean mask that is True where a query may attend (causal, right-aligned)."""
    offset = n_keys - n_queries
    q_idx = np.arange(n_queries)[:, None]
    k_idx = np.arange(n_keys)[None, :]
    return k_idx <= (q_idx + offset)


@dataclass
class KVCache:
    """Per-layer key/value cache for autoregressive decoding."""

    keys: Optional[np.ndarray] = None  # (seq, hidden)
    values: Optional[np.ndarray] = None  # (seq, hidden)

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        keys = np.atleast_2d(np.asarray(keys, dtype=np.float64))
        values = np.atleast_2d(np.asarray(values, dtype=np.float64))
        if self.keys is None:
            self.keys = keys.copy()
            self.values = values.copy()
        else:
            self.keys = np.vstack([self.keys, keys])
            self.values = np.vstack([self.values, values])

    @property
    def seq_len(self) -> int:
        return 0 if self.keys is None else int(self.keys.shape[0])

    def clear(self) -> None:
        self.keys = None
        self.values = None


@dataclass
class AttentionOutput:
    """Attention result plus sparsity statistics for the cost models."""

    output: np.ndarray
    keys_attended: int
    keys_total: int
    selected_fraction: float


class MultiHeadAttention:
    """Standard multi-head self-attention with an optional key predictor.

    Parameters
    ----------
    hidden_size, n_heads:
        Model dimensions; ``head_dim = hidden_size // n_heads``.
    wq, wk, wv, wo:
        Projection layers; random Gaussian projections are created when not
        supplied (used by the synthetic models).
    """

    def __init__(
        self,
        hidden_size: int,
        n_heads: int,
        wq: Optional[Linear] = None,
        wk: Optional[Linear] = None,
        wv: Optional[Linear] = None,
        wo: Optional[Linear] = None,
        seed: Optional[int] = None,
    ) -> None:
        if hidden_size % n_heads != 0:
            raise ValueError("hidden_size must be divisible by n_heads")
        self.hidden_size = hidden_size
        self.n_heads = n_heads
        self.head_dim = hidden_size // n_heads
        base_seed = 0 if seed is None else seed
        self.wq = wq or Linear.random(hidden_size, hidden_size, seed=base_seed + 1)
        self.wk = wk or Linear.random(hidden_size, hidden_size, seed=base_seed + 2)
        self.wv = wv or Linear.random(hidden_size, hidden_size, seed=base_seed + 3)
        self.wo = wo or Linear.random(hidden_size, hidden_size, seed=base_seed + 4)

    # -- helpers -------------------------------------------------------------

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        seq = x.shape[0]
        return x.reshape(seq, self.n_heads, self.head_dim).transpose(1, 0, 2)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        n_heads, seq, head_dim = x.shape
        return x.transpose(1, 0, 2).reshape(seq, n_heads * head_dim)

    def merged_context(
        self, q: np.ndarray, k: np.ndarray, v: np.ndarray
    ) -> np.ndarray:
        """Dense causal attention on pre-projected Q/K/V, before the output projection.

        Used by the quantisation calibration path, which needs the exact tensor
        that feeds the ``wo`` projection.
        """
        qh = self._split_heads(np.atleast_2d(np.asarray(q, dtype=np.float64)))
        kh = self._split_heads(np.atleast_2d(np.asarray(k, dtype=np.float64)))
        vh = self._split_heads(np.atleast_2d(np.asarray(v, dtype=np.float64)))
        mask = causal_mask(qh.shape[1], kh.shape[1])
        scale = 1.0 / np.sqrt(self.head_dim)
        logits = np.einsum("hqd,hkd->hqk", qh, kh) * scale
        logits = np.where(mask[None, :, :], logits, -np.inf)
        probs = softmax(logits, axis=-1)
        context = np.einsum("hqk,hkd->hqd", probs, vh)
        return self._merge_heads(context)

    # -- forward -------------------------------------------------------------

    def __call__(
        self,
        hidden_states: np.ndarray,
        cache: Optional[KVCache] = None,
        predictor: Optional[KeyPredictor] = None,
    ) -> AttentionOutput:
        """Compute attention for ``hidden_states`` of shape ``(seq, hidden)``.

        When ``cache`` is given, the new keys/values are appended to it and
        queries attend to the full cached sequence (decode mode for a single
        new token, prefill mode for a full prompt).  ``predictor`` restricts
        each query row to the key indices it returns; unselected keys receive
        ``-inf`` logits before the softmax, mirroring top-k sparse attention.
        """
        hidden_states = np.atleast_2d(np.asarray(hidden_states, dtype=np.float64))
        q = self.wq(hidden_states)
        k_new = self.wk(hidden_states)
        v_new = self.wv(hidden_states)

        if cache is not None:
            cache.append(k_new, v_new)
            k_all = cache.keys
            v_all = cache.values
        else:
            k_all = k_new
            v_all = v_new

        qh = self._split_heads(q)
        kh = self._split_heads(k_all)
        vh = self._split_heads(v_all)

        n_queries = qh.shape[1]
        n_keys = kh.shape[1]
        mask = causal_mask(n_queries, n_keys)

        selection_mask = np.ones((n_queries, n_keys), dtype=bool)
        if predictor is not None:
            selection_mask = np.zeros((n_queries, n_keys), dtype=bool)
            # Predictors operate on the full (head-concatenated) Q/K rows, the
            # same granularity the BGPP unit sees (it processes Q x K^T per row).
            for i in range(n_queries):
                allowed = np.flatnonzero(mask[i])
                selected = np.asarray(
                    predictor(q[i], k_all[allowed]), dtype=np.int64
                )
                selected = allowed[selected[selected < allowed.size]]
                if selected.size == 0:
                    selected = allowed[-1:]
                selection_mask[i, selected] = True
        full_mask = mask & selection_mask

        scale = 1.0 / np.sqrt(self.head_dim)
        logits = np.einsum("hqd,hkd->hqk", qh, kh) * scale
        logits = np.where(full_mask[None, :, :], logits, -np.inf)
        probs = softmax(logits, axis=-1)
        context = np.einsum("hqk,hkd->hqd", probs, vh)
        merged = self._merge_heads(context)
        output = self.wo(merged)

        keys_attended = int(full_mask.sum())
        keys_total = int(mask.sum())
        return AttentionOutput(
            output=output,
            keys_attended=keys_attended,
            keys_total=keys_total,
            selected_fraction=keys_attended / keys_total if keys_total else 1.0,
        )
