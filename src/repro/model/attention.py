"""Multi-head self-attention with KV cache and optional sparse prediction.

Attention is where MCBP's BGPP operates: before the "formal compute" stage, a
predictor selects the vital keys for each query and the full-precision
``QK^T`` / softmax / ``PV`` computation only touches those keys (paper §2.2,
Fig. 3).  The predictor is pluggable so that the same module can run dense
attention, value-level top-k and bit-grained progressive prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from .layers import Linear, softmax

__all__ = [
    "KVCache",
    "AttentionOutput",
    "BatchedAttentionOutput",
    "ChunkedAttentionOutput",
    "MultiHeadAttention",
    "causal_mask",
    "ragged_selection_mask",
]

# A predictor maps (query_row, keys) -> selected key indices.  Predictors may
# additionally expose a ``select_ragged(queries, keys, lengths)`` attribute
# (see repro.core.bgpp.make_bgpp_predictor) that runs a whole ragged query
# batch in one pass; ragged_selection_mask() uses it when present.
KeyPredictor = Callable[[np.ndarray, np.ndarray], np.ndarray]


def causal_mask(n_queries: int, n_keys: int) -> np.ndarray:
    """Boolean mask that is True where a query may attend (causal, right-aligned)."""
    offset = n_keys - n_queries
    q_idx = np.arange(n_queries)[:, None]
    k_idx = np.arange(n_keys)[None, :]
    return k_idx <= (q_idx + offset)


def ragged_selection_mask(
    predictor: KeyPredictor,
    q_rows: np.ndarray,
    keys: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    """Boolean ``(n_queries, n_keys)`` predictor-selection mask under ``mask``.

    Each query row may only attend where ``mask`` is True; the predictor
    ranks that row's allowed keys and at least one key (the most recent
    allowed one) is always kept.  Causal masks are prefix-shaped, so when the
    predictor exposes ``select_ragged`` the whole batch runs as one masked
    pass instead of ``n_queries`` separate predictor calls; the fallback loop
    is bit-identical.
    """
    n_queries, n_keys = mask.shape
    selection = np.zeros((n_queries, n_keys), dtype=bool)
    lengths = mask.sum(axis=1)
    select_ragged = getattr(predictor, "select_ragged", None)
    # the batched entry point assumes each row attends a key prefix
    prefix_shaped = bool(
        (mask == (np.arange(n_keys)[None, :] < lengths[:, None])).all()
    )
    if select_ragged is not None and prefix_shaped:
        for i, selected in enumerate(select_ragged(q_rows, keys, lengths)):
            if lengths[i] == 0:
                continue
            selected = np.asarray(selected, dtype=np.int64)
            selected = selected[selected < lengths[i]]
            if selected.size == 0:
                selected = np.array([lengths[i] - 1], dtype=np.int64)
            selection[i, selected] = True
        return selection
    for i in range(n_queries):
        allowed = np.flatnonzero(mask[i])
        selected = np.asarray(predictor(q_rows[i], keys[allowed]), dtype=np.int64)
        selected = allowed[selected[selected < allowed.size]]
        if selected.size == 0:
            selected = allowed[-1:]
        selection[i, selected] = True
    return selection


class KVCache:
    """Per-layer key/value cache for autoregressive decoding.

    Two storage modes share one interface:

    * **standalone** (the default): rows live in this cache's own
      capacity-doubling buffers, so each decode step appends in amortised
      O(1) instead of re-copying the whole history (the seed implementation
      vstacked O(seq) per token).  :attr:`keys` / :attr:`values` expose the
      live ``(seq, hidden)`` prefix as views; they stay valid until the next
      append.
    * **arena-backed**: constructed with ``arena``/``session_id``/``layer``
      (see :class:`repro.serve.kv_arena.PagedKVArena`), the cache is a thin
      handle -- appends write into the shared page pool and :attr:`keys` /
      :attr:`values` materialise contiguous copies on demand.  The fused
      batched attention path recognises arena-backed caches and reads the
      pool through :meth:`~repro.serve.kv_arena.PagedKVArena.gather_batch`
      instead, skipping the per-session materialisation entirely.  An
      arena in ``KVDtype.INT8`` mode is transparent here: appends are
      quantised and every read path (``keys``/``values``,
      ``gather_batch``) dequantises back to float through the arena's
      per-page scales, so attention always computes over float rows.
    """

    def __init__(
        self,
        keys: Optional[np.ndarray] = None,
        values: Optional[np.ndarray] = None,
        *,
        arena=None,
        session_id: Optional[int] = None,
        layer: Optional[int] = None,
    ) -> None:
        self._arena = arena
        self._session_id = session_id
        self._layer = layer
        if arena is not None and (session_id is None or layer is None):
            raise ValueError("arena-backed caches need session_id and layer")
        self._keys: Optional[np.ndarray] = None  # (capacity, hidden)
        self._values: Optional[np.ndarray] = None
        self._len = 0
        if (keys is None) != (values is None):
            raise ValueError("keys and values must be provided together")
        if keys is not None:
            self.append(keys, values)

    # -- arena plumbing (None / unset on standalone caches) --------------------

    @property
    def arena(self):
        """The backing :class:`PagedKVArena`, or ``None`` when standalone."""
        return self._arena

    @property
    def arena_session(self) -> Optional[int]:
        return self._session_id

    @property
    def arena_layer(self) -> Optional[int]:
        return self._layer

    def release(self) -> None:
        """Free the backing storage (the whole arena session, or the buffers)."""
        if self._arena is not None:
            if self._arena.has_session(self._session_id):
                self._arena.free(self._session_id)
        else:
            self.clear()

    # -- storage ---------------------------------------------------------------

    @property
    def keys(self) -> Optional[np.ndarray]:
        if self._arena is not None:
            if self.seq_len == 0:  # covers released sessions too
                return None
            return self._arena.session_keys(self._session_id, self._layer)
        return None if self._len == 0 else self._keys[: self._len]

    @property
    def values(self) -> Optional[np.ndarray]:
        if self._arena is not None:
            if self.seq_len == 0:  # covers released sessions too
                return None
            return self._arena.session_values(self._session_id, self._layer)
        return None if self._len == 0 else self._values[: self._len]

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        if self._arena is not None:
            if not self._arena.has_session(self._session_id):
                raise RuntimeError(
                    f"KV cache was released (arena session {self._session_id} freed)"
                )
            self._arena.append(self._session_id, self._layer, keys, values)
            return
        keys = np.atleast_2d(np.asarray(keys, dtype=np.float64))
        values = np.atleast_2d(np.asarray(values, dtype=np.float64))
        n_new = keys.shape[0]
        needed = self._len + n_new
        if self._keys is None or needed > self._keys.shape[0]:
            capacity = max(needed, 2 * (0 if self._keys is None else self._keys.shape[0]), 16)
            grown_k = np.empty((capacity, keys.shape[1]), dtype=np.float64)
            grown_v = np.empty((capacity, values.shape[1]), dtype=np.float64)
            if self._len:
                grown_k[: self._len] = self._keys[: self._len]
                grown_v[: self._len] = self._values[: self._len]
            self._keys, self._values = grown_k, grown_v
        self._keys[self._len : needed] = keys
        self._values[self._len : needed] = values
        self._len = needed

    @property
    def seq_len(self) -> int:
        if self._arena is not None:
            if not self._arena.has_session(self._session_id):
                return 0  # released: behave like a cleared standalone cache
            return self._arena.seq_len(self._session_id, self._layer)
        return self._len

    def clear(self) -> None:
        if self._arena is not None:
            if self._arena.has_session(self._session_id):
                self._arena.clear_layer(self._session_id, self._layer)
            return
        self._keys = None
        self._values = None
        self._len = 0


@dataclass
class AttentionOutput:
    """Attention result plus sparsity statistics for the cost models.

    ``row_keys_attended`` / ``row_keys_total`` break the scalar counts down
    per query row (``(n_queries,)`` int64); the serving layer's prefix cache
    records them per prompt row so a later cache-hit session can credit the
    skipped rows' statistics bit-exactly.
    """

    output: np.ndarray
    keys_attended: int
    keys_total: int
    selected_fraction: float
    row_keys_attended: Optional[np.ndarray] = None
    row_keys_total: Optional[np.ndarray] = None


@dataclass
class BatchedAttentionOutput:
    """Result of one fused decode step over ``B`` independent streams.

    ``output`` is the merged-head context ``(B, hidden)`` *before* the output
    projection; ``keys_attended`` / ``keys_total`` carry one entry per stream
    so callers can split the batched step back into per-request statistics.
    """

    output: np.ndarray
    keys_attended: np.ndarray  # (B,) ints
    keys_total: np.ndarray  # (B,) ints


@dataclass
class ChunkedAttentionOutput(BatchedAttentionOutput):
    """Result of one ragged chunked-prefill step over ``B`` streams.

    Same per-stream fields as :class:`BatchedAttentionOutput`, but
    ``output`` is the merged-head context for *every chunk row*, flattened
    back to ``(total_rows, hidden)`` in the same stream order the queries
    came in (stream 0's rows first), rather than one row per stream.
    ``row_keys_attended`` / ``row_keys_total`` carry one per-row int64 array
    per stream (this chunk's rows only), for the prefix cache's bit-exact
    metric crediting.
    """

    row_keys_attended: Optional[List[np.ndarray]] = None
    row_keys_total: Optional[List[np.ndarray]] = None


class MultiHeadAttention:
    """Standard multi-head self-attention with an optional key predictor.

    Parameters
    ----------
    hidden_size, n_heads:
        Model dimensions; ``head_dim = hidden_size // n_heads``.
    wq, wk, wv, wo:
        Projection layers; random Gaussian projections are created when not
        supplied (used by the synthetic models).
    """

    def __init__(
        self,
        hidden_size: int,
        n_heads: int,
        wq: Optional[Linear] = None,
        wk: Optional[Linear] = None,
        wv: Optional[Linear] = None,
        wo: Optional[Linear] = None,
        seed: Optional[int] = None,
    ) -> None:
        if hidden_size % n_heads != 0:
            raise ValueError("hidden_size must be divisible by n_heads")
        self.hidden_size = hidden_size
        self.n_heads = n_heads
        self.head_dim = hidden_size // n_heads
        base_seed = 0 if seed is None else seed
        self.wq = wq or Linear.random(hidden_size, hidden_size, seed=base_seed + 1)
        self.wk = wk or Linear.random(hidden_size, hidden_size, seed=base_seed + 2)
        self.wv = wv or Linear.random(hidden_size, hidden_size, seed=base_seed + 3)
        self.wo = wo or Linear.random(hidden_size, hidden_size, seed=base_seed + 4)
        # KV bytes copied by decode_batch's per-session stacking fallback;
        # the arena path's counterpart is ArenaStats.gather_bytes_copied
        self.stack_copy_bytes = 0

    # -- helpers -------------------------------------------------------------

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        seq = x.shape[0]
        return x.reshape(seq, self.n_heads, self.head_dim).transpose(1, 0, 2)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        n_heads, seq, head_dim = x.shape
        return x.transpose(1, 0, 2).reshape(seq, n_heads * head_dim)

    def merged_context(
        self, q: np.ndarray, k: np.ndarray, v: np.ndarray
    ) -> np.ndarray:
        """Dense causal attention on pre-projected Q/K/V, before the output projection.

        Used by the quantisation calibration path, which needs the exact tensor
        that feeds the ``wo`` projection.
        """
        qh = self._split_heads(np.atleast_2d(np.asarray(q, dtype=np.float64)))
        kh = self._split_heads(np.atleast_2d(np.asarray(k, dtype=np.float64)))
        vh = self._split_heads(np.atleast_2d(np.asarray(v, dtype=np.float64)))
        mask = causal_mask(qh.shape[1], kh.shape[1])
        scale = 1.0 / np.sqrt(self.head_dim)
        logits = np.einsum("hqd,hkd->hqk", qh, kh) * scale
        logits = np.where(mask[None, :, :], logits, -np.inf)
        probs = softmax(logits, axis=-1)
        context = np.einsum("hqk,hkd->hqd", probs, vh)
        return self._merge_heads(context)

    # -- forward -------------------------------------------------------------

    def __call__(
        self,
        hidden_states: np.ndarray,
        cache: Optional[KVCache] = None,
        predictor: Optional[KeyPredictor] = None,
    ) -> AttentionOutput:
        """Compute attention for ``hidden_states`` of shape ``(seq, hidden)``.

        When ``cache`` is given, the new keys/values are appended to it and
        queries attend to the full cached sequence (decode mode for a single
        new token, prefill mode for a full prompt).  ``predictor`` restricts
        each query row to the key indices it returns; unselected keys receive
        ``-inf`` logits before the softmax, mirroring top-k sparse attention.
        """
        hidden_states = np.atleast_2d(np.asarray(hidden_states, dtype=np.float64))
        q = self.wq(hidden_states)
        k_new = self.wk(hidden_states)
        v_new = self.wv(hidden_states)

        if cache is not None:
            cache.append(k_new, v_new)
            k_all = cache.keys
            v_all = cache.values
        else:
            k_all = k_new
            v_all = v_new

        qh = self._split_heads(q)
        kh = self._split_heads(k_all)
        vh = self._split_heads(v_all)

        n_queries = qh.shape[1]
        n_keys = kh.shape[1]
        mask = causal_mask(n_queries, n_keys)

        selection_mask = np.ones((n_queries, n_keys), dtype=bool)
        if predictor is not None:
            # Predictors operate on the full (head-concatenated) Q/K rows, the
            # same granularity the BGPP unit sees (it processes Q x K^T per row).
            selection_mask = ragged_selection_mask(predictor, q, k_all, mask)
        full_mask = mask & selection_mask

        scale = 1.0 / np.sqrt(self.head_dim)
        logits = np.einsum("hqd,hkd->hqk", qh, kh) * scale
        logits = np.where(full_mask[None, :, :], logits, -np.inf)
        probs = softmax(logits, axis=-1)
        context = np.einsum("hqk,hkd->hqd", probs, vh)
        merged = self._merge_heads(context)
        output = self.wo(merged)

        row_attended = full_mask.sum(axis=1).astype(np.int64)
        row_total = mask.sum(axis=1).astype(np.int64)
        keys_attended = int(row_attended.sum())
        keys_total = int(row_total.sum())
        return AttentionOutput(
            output=output,
            keys_attended=keys_attended,
            keys_total=keys_total,
            selected_fraction=keys_attended / keys_total if keys_total else 1.0,
            row_keys_attended=row_attended,
            row_keys_total=row_total,
        )

    # -- fused batched decode -------------------------------------------------

    def decode_batch(
        self,
        q: np.ndarray,
        k_new: np.ndarray,
        v_new: np.ndarray,
        caches: List[KVCache],
        predictor: Optional[KeyPredictor] = None,
    ) -> BatchedAttentionOutput:
        """One decode step for ``B`` independent streams on pre-projected Q/K/V.

        ``q``/``k_new``/``v_new`` hold one new token per stream, stacked to
        ``(B, hidden)``; ``caches[b]`` is stream ``b``'s own KV cache (ragged
        context lengths).  The new K/V rows are appended per stream and the
        cached keys/values materialise as padded ``(B, max_len, hidden)``
        tensors under a validity mask: when every cache is a handle onto one
        shared :class:`~repro.serve.kv_arena.PagedKVArena`, that tensor is an
        incrementally maintained view whose per-step refresh copies only the
        ``B`` new rows; otherwise each stream's cache is stacked into a fresh
        tensor (copy bytes tallied in :attr:`stack_copy_bytes`).  The score
        and context contractions each run as one einsum over the whole
        batch.  The softmax runs on each
        stream's valid slice so every row is bit-identical to stepping that
        stream alone through :meth:`__call__`'s decode path (padding
        positions carry exactly-zero probability and cannot perturb the
        contraction).

        Returns the merged-head context *before* the ``wo`` projection --
        quantised execution applies its own calibrated output projection --
        together with per-stream attended/total key counts.
        """
        q = np.atleast_2d(np.asarray(q, dtype=np.float64))
        k_new = np.atleast_2d(np.asarray(k_new, dtype=np.float64))
        v_new = np.atleast_2d(np.asarray(v_new, dtype=np.float64))
        n_streams = q.shape[0]
        if len(caches) != n_streams:
            raise ValueError(
                f"expected {n_streams} caches, got {len(caches)}"
            )
        for b in range(n_streams):
            caches[b].append(k_new[b], v_new[b])
        lengths = np.array([cache.seq_len for cache in caches], dtype=np.int64)
        max_len = int(lengths.max())

        arena = caches[0].arena
        layer = caches[0].arena_layer
        if arena is not None and all(
            c.arena is arena and c.arena_layer == layer for c in caches
        ):
            # zero-copy batched read: the arena's per-layer gather cache is
            # refreshed with only the newly appended rows (O(B) per step)
            keys, values, _ = arena.gather_batch(
                layer, [c.arena_session for c in caches]
            )
        else:
            keys = np.zeros((n_streams, max_len, self.hidden_size))
            values = np.zeros((n_streams, max_len, self.hidden_size))
            for b, cache in enumerate(caches):
                keys[b, : lengths[b]] = cache.keys
                values[b, : lengths[b]] = cache.values
            self.stack_copy_bytes += (
                2 * int(lengths.sum()) * self.hidden_size * keys.itemsize
            )
        valid = np.arange(max_len)[None, :] < lengths[:, None]

        full_mask = valid
        if predictor is not None:
            # each stream has its own key set, so selection is inherently
            # per-stream; the predictor sees the same key values the
            # sequential path feeds it (padded rows are sliced away)
            selection = np.zeros_like(valid)
            for b in range(n_streams):
                stream_keys = keys[b, : lengths[b]]
                selected = np.asarray(predictor(q[b], stream_keys), dtype=np.int64)
                selected = selected[selected < lengths[b]]
                if selected.size == 0:
                    selected = np.array([lengths[b] - 1], dtype=np.int64)
                selection[b, selected] = True
            full_mask = valid & selection

        qh = q.reshape(n_streams, self.n_heads, self.head_dim)
        kh = keys.reshape(n_streams, max_len, self.n_heads, self.head_dim)
        kh = kh.transpose(0, 2, 1, 3)
        vh = values.reshape(n_streams, max_len, self.n_heads, self.head_dim)
        vh = vh.transpose(0, 2, 1, 3)

        scale = 1.0 / np.sqrt(self.head_dim)
        logits = np.einsum("bhd,bhkd->bhk", qh, kh) * scale
        logits = np.where(full_mask[:, None, :], logits, -np.inf)
        # softmax reductions must run over each stream's true context length
        # to stay bit-identical to the sequential path; with uniform lengths
        # there is no padding, so one batched call suffices
        if int(lengths.min()) == max_len:
            probs = softmax(logits, axis=-1)
        else:
            probs = np.zeros_like(logits)
            for b in range(n_streams):
                probs[b, :, : lengths[b]] = softmax(
                    logits[b, :, : lengths[b]], axis=-1
                )
        context = np.einsum("bhk,bhkd->bhd", probs, vh)
        merged = context.reshape(n_streams, self.hidden_size)
        return BatchedAttentionOutput(
            output=merged,
            keys_attended=full_mask.sum(axis=1).astype(np.int64),
            keys_total=lengths,
        )

    # -- chunked ragged batched prefill ---------------------------------------

    def prefill_batch(
        self,
        q: np.ndarray,
        k_new: np.ndarray,
        v_new: np.ndarray,
        row_counts: np.ndarray,
        caches: List[KVCache],
        total_lens: Optional[np.ndarray] = None,
        predictor: Optional[KeyPredictor] = None,
    ) -> ChunkedAttentionOutput:
        """Causal prefill attention for ``B`` ragged prompt chunks at once.

        ``q``/``k_new``/``v_new`` hold every stream's chunk rows stacked flat
        to ``(total_rows, hidden)`` (stream ``b`` owns ``row_counts[b]``
        consecutive rows); ``caches[b]`` is stream ``b``'s KV cache, which may
        already hold that stream's earlier chunks.  The new K/V rows are
        appended first -- through one multi-row
        :meth:`~repro.serve.kv_arena.PagedKVArena.append_batch` call when
        every cache is a handle onto one shared arena -- and each chunk row
        attends causally to its stream's full prefix (cached history plus the
        chunk rows at or before it).

        ``total_lens[b]`` is the *final* prefill length of stream ``b`` (the
        key width of the one-shot serial forward this chunk sequence
        reproduces; a plain decode row passes its post-append length).  Each
        query row's softmax runs over exactly that width -- real logits on
        the causal prefix, ``-inf`` (hence exactly-zero probability)
        everywhere else -- which is the same array the serial pass reduces,
        so every output row is **bit-identical** to the corresponding row of
        ``__call__`` over the whole prompt, no matter how the prompt was
        chunked or which streams shared the batch.

        The score/softmax/context contractions run per stream at each
        stream's *exact* shapes: mixed batches are extremely ragged (one-row
        decode streams next to whole-prompt admission chunks), so a padded
        ``(B, Lmax, W)`` einsum would spend most of its FLOPs on padding --
        per-stream contraction keeps the attention cost identical to the
        serial pass while the projections/FFN GEMMs (where the fused win
        lives) still run once for the whole stacked batch.

        Returns the merged-head context rows (flattened back to
        ``(total_rows, hidden)``, before the output projection) plus
        per-stream attended/total key counts covering only this chunk's rows,
        so partial statistics accumulate to the serial pass's totals.
        """
        q = np.atleast_2d(np.asarray(q, dtype=np.float64))
        k_new = np.atleast_2d(np.asarray(k_new, dtype=np.float64))
        v_new = np.atleast_2d(np.asarray(v_new, dtype=np.float64))
        row_counts = np.asarray(row_counts, dtype=np.int64)
        n_streams = int(row_counts.size)
        if n_streams == 0:
            raise ValueError("prefill_batch needs at least one stream")
        if (row_counts < 1).any():
            raise ValueError("every stream must contribute at least one row")
        offsets = np.concatenate([[0], np.cumsum(row_counts)])
        if int(offsets[-1]) != q.shape[0]:
            raise ValueError(
                f"row_counts sum to {int(offsets[-1])} but got {q.shape[0]} rows"
            )
        if len(caches) != n_streams:
            raise ValueError(f"expected {n_streams} caches, got {len(caches)}")

        # append the chunk rows: one batched multi-row arena append when every
        # cache shares the pool, per-cache appends otherwise
        arena = caches[0].arena
        layer = caches[0].arena_layer
        shared = arena is not None and all(
            c.arena is arena and c.arena_layer == layer for c in caches
        )
        k_blocks = [k_new[offsets[b] : offsets[b + 1]] for b in range(n_streams)]
        v_blocks = [v_new[offsets[b] : offsets[b + 1]] for b in range(n_streams)]
        if shared:
            arena.append_batch(
                layer, [c.arena_session for c in caches], k_blocks, v_blocks
            )
        else:
            for b, cache in enumerate(caches):
                cache.append(k_blocks[b], v_blocks[b])

        lengths = np.array([cache.seq_len for cache in caches], dtype=np.int64)
        if total_lens is None:
            total_lens = lengths
        else:
            total_lens = np.asarray(total_lens, dtype=np.int64)
            if total_lens.shape != lengths.shape:
                raise ValueError("total_lens must carry one entry per stream")
            if (total_lens < lengths).any():
                raise ValueError("total_lens must be >= each stream's length")
        if shared:
            keys, values, _ = arena.gather_batch(
                layer, [c.arena_session for c in caches]
            )
        else:
            max_len = int(lengths.max())
            keys = np.zeros((n_streams, max_len, self.hidden_size))
            values = np.zeros((n_streams, max_len, self.hidden_size))
            for b, cache in enumerate(caches):
                keys[b, : lengths[b]] = cache.keys
                values[b, : lengths[b]] = cache.values
            self.stack_copy_bytes += (
                2 * int(lengths.sum()) * self.hidden_size * keys.itemsize
            )

        scale = 1.0 / np.sqrt(self.head_dim)
        flat = np.empty((int(offsets[-1]), self.hidden_size))
        keys_attended = np.zeros(n_streams, dtype=np.int64)
        keys_total = np.zeros(n_streams, dtype=np.int64)
        row_attended: List[np.ndarray] = []
        row_total: List[np.ndarray] = []
        for b in range(n_streams):
            n_rows, n_keys, w = int(row_counts[b]), int(lengths[b]), int(total_lens[b])
            q_rows = q[offsets[b] : offsets[b + 1]]
            # causal chunk mask: row i (absolute position start + i) may
            # attend keys 0..start+i -- causal_mask right-aligns it
            mask = causal_mask(n_rows, n_keys)
            full_mask = mask
            if predictor is not None:
                # each chunk row ranks its own prefix, fed the same key
                # values the serial pass would (cache rows are exact copies)
                full_mask = mask & ragged_selection_mask(
                    predictor, q_rows, keys[b, :n_keys], mask
                )
            qh = self._split_heads(q_rows)
            kh = self._split_heads(keys[b, :n_keys])
            vh = self._split_heads(values[b, :n_keys])
            scores = np.einsum("hqd,hkd->hqk", qh, kh) * scale
            # each row's softmax must reduce over exactly the serial pass's
            # key width (total_lens[b]); keys past the materialised prefix
            # are -inf like any other masked position, probability exactly 0
            logits = np.full((self.n_heads, n_rows, w), -np.inf)
            logits[..., :n_keys] = np.where(full_mask[None, :, :], scores, -np.inf)
            probs = softmax(logits, axis=-1)
            context = np.einsum("hqk,hkd->hqd", probs[..., :n_keys], vh)
            flat[offsets[b] : offsets[b + 1]] = self._merge_heads(context)
            row_attended.append(full_mask.sum(axis=1).astype(np.int64))
            row_total.append(mask.sum(axis=1).astype(np.int64))
            keys_attended[b] = int(row_attended[b].sum())
            keys_total[b] = int(row_total[b].sum())
        return ChunkedAttentionOutput(
            output=flat,
            keys_attended=keys_attended,
            keys_total=keys_total,
            row_keys_attended=row_attended,
            row_keys_total=row_total,
        )
