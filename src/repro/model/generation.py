"""Prefill + autoregressive decoding driver (paper §1 / §2.1).

LLM inference splits into a *prefill* stage that processes the whole prompt in
parallel and a *decoding* stage that generates tokens one at a time, each step
touching the full weights and the growing KV cache.  This module runs both
stages on the NumPy transformer and records the statistics the accelerator
cost models need (tokens, attention density, per-stage GEMM volume).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from .attention import KVCache
from .config import ModelConfig
from .transformer import ForwardStats, TransformerModel

__all__ = ["GenerationResult", "greedy_sample", "generate", "stage_gemm_macs"]

KeyPredictor = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class GenerationResult:
    """Tokens produced by :func:`generate` plus per-stage statistics."""

    prompt_tokens: List[int]
    generated_tokens: List[int]
    prefill_stats: ForwardStats
    decode_stats: List[ForwardStats]
    logits_history: List[np.ndarray] = field(default_factory=list)

    @property
    def n_generated(self) -> int:
        return len(self.generated_tokens)

    @property
    def decode_attention_density(self) -> float:
        totals = sum(s.keys_total for s in self.decode_stats)
        attended = sum(s.keys_attended for s in self.decode_stats)
        return attended / totals if totals else 1.0


def greedy_sample(logits: np.ndarray) -> int:
    """Pick the argmax token from the last position's logits."""
    logits = np.asarray(logits)
    last = logits[-1] if logits.ndim == 2 else logits
    return int(np.argmax(last))


def generate(
    model,
    prompt_tokens: Sequence[int],
    max_new_tokens: int = 16,
    predictor: Optional[KeyPredictor] = None,
    keep_logits: bool = False,
    eos_token: Optional[int] = None,
) -> GenerationResult:
    """Greedy generation with an explicit prefill / decode split.

    ``model`` may be a :class:`TransformerModel` or
    :class:`~repro.model.transformer.QuantizedTransformer` -- anything exposing
    ``forward(tokens, caches, predictor)`` and ``new_cache()``.
    """
    prompt_tokens = [int(t) for t in prompt_tokens]
    if not prompt_tokens:
        raise ValueError("prompt must contain at least one token")
    caches: List[KVCache] = model.new_cache()

    logits, prefill_stats = model.forward(
        prompt_tokens, caches=caches, predictor=predictor
    )
    generated: List[int] = []
    decode_stats: List[ForwardStats] = []
    history: List[np.ndarray] = [logits] if keep_logits else []

    next_token = greedy_sample(logits)
    for step in range(max_new_tokens):
        generated.append(next_token)
        if eos_token is not None and next_token == eos_token:
            break
        if step == max_new_tokens - 1:
            break  # no further token is needed, skip the trailing forward pass
        step_logits, stats = model.forward(
            [next_token], caches=caches, predictor=predictor
        )
        decode_stats.append(stats)
        if keep_logits:
            history.append(step_logits)
        next_token = greedy_sample(step_logits)

    return GenerationResult(
        prompt_tokens=prompt_tokens,
        generated_tokens=generated,
        prefill_stats=prefill_stats,
        decode_stats=decode_stats,
        logits_history=history,
    )


def stage_gemm_macs(
    config: ModelConfig,
    prompt_len: int,
    decode_len: int,
    batch: int = 1,
) -> dict:
    """Analytic MAC counts of the prefill and decoding stages.

    Returns a dict with per-stage linear-layer MACs and attention MACs,
    which feed the GPU roofline model and the accelerator cost model
    (Fig. 1a breakdown).
    """
    h = config.hidden_size
    f = config.ffn_hidden
    layers = config.n_layers
    per_token_linear = layers * (4 * h * h + 2 * h * f)

    prefill_linear = per_token_linear * prompt_len * batch
    # attention scores + context for causal prefill: ~S^2/2 per layer per head dim
    prefill_attention = layers * prompt_len * prompt_len * h * batch

    decode_linear = per_token_linear * decode_len * batch
    # each decode step attends to the full prefix
    avg_context = prompt_len + decode_len / 2.0
    decode_attention = layers * decode_len * avg_context * 2 * h * batch

    return {
        "prefill_linear_macs": float(prefill_linear),
        "prefill_attention_macs": float(prefill_attention),
        "decode_linear_macs": float(decode_linear),
        "decode_attention_macs": float(decode_attention),
        "weight_bytes": float(config.weight_bytes()),
        "kv_bytes_end": float(config.kv_cache_bytes(prompt_len + decode_len, batch)),
    }
