"""Prefill + autoregressive decoding driver (paper §1 / §2.1).

LLM inference splits into a *prefill* stage that processes the whole prompt in
parallel and a *decoding* stage that generates tokens one at a time, each step
touching the full weights and the growing KV cache.  This module runs both
stages on the NumPy transformer and records the statistics the accelerator
cost models need (tokens, attention density, per-stage GEMM volume).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from .attention import KVCache
from .config import ModelConfig
from .transformer import ForwardStats, TransformerModel

__all__ = [
    "GenerationResult",
    "IncrementalDecoder",
    "greedy_sample",
    "generate",
    "stage_gemm_macs",
]

KeyPredictor = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class GenerationResult:
    """Tokens produced by :func:`generate` plus per-stage statistics."""

    prompt_tokens: List[int]
    generated_tokens: List[int]
    prefill_stats: ForwardStats
    decode_stats: List[ForwardStats]
    logits_history: List[np.ndarray] = field(default_factory=list)

    @property
    def n_generated(self) -> int:
        return len(self.generated_tokens)

    @property
    def decode_attention_density(self) -> float:
        totals = sum(s.keys_total for s in self.decode_stats)
        attended = sum(s.keys_attended for s in self.decode_stats)
        return attended / totals if totals else 1.0


def greedy_sample(logits: np.ndarray) -> int:
    """Pick the argmax token from the last position's logits."""
    logits = np.asarray(logits)
    last = logits[-1] if logits.ndim == 2 else logits
    return int(np.argmax(last))


class IncrementalDecoder:
    """One generation stream: a model's KV caches plus prefill/step methods.

    This is the unit the serving layer multiplexes -- each concurrent request
    owns one decoder (its KV caches and per-stage statistics) while all
    decoders share the same underlying model weights.  :func:`generate` is a
    thin single-stream driver over the same API.

    ``model`` may be a :class:`~repro.model.transformer.TransformerModel` or
    :class:`~repro.model.transformer.QuantizedTransformer` -- anything exposing
    ``forward(tokens, caches, predictor)`` and ``new_cache()``.  When
    ``arena`` (a :class:`~repro.serve.kv_arena.PagedKVArena`) is given, the
    decoder's KV caches are thin handles onto one arena session instead of
    standalone buffers; :meth:`release` returns the session's pages once the
    stream is finished.
    """

    def __init__(
        self,
        model,
        predictor: Optional[KeyPredictor] = None,
        arena=None,
    ) -> None:
        self.model = model
        self.predictor = predictor
        self.arena = arena
        # route through the model's cache hook so wrappers can customise it
        self.caches: List[KVCache] = (
            model.new_cache() if arena is None else model.new_cache(arena=arena)
        )
        self.prefill_stats: Optional[ForwardStats] = None
        self.decode_stats: List[ForwardStats] = []
        self.last_logits: Optional[np.ndarray] = None

    def release(self) -> None:
        """Free the KV storage held by this stream (idempotent).

        For arena-backed decoders this returns the session's pages to the
        shared pool; for standalone caches it drops the buffers.  Statistics
        and logits survive -- only the KV history is discarded, so the
        decoder can no longer step afterwards.
        """
        for cache in self.caches:
            cache.release()

    @property
    def seq_len(self) -> int:
        """Number of tokens currently held in the KV cache."""
        return self.caches[0].seq_len if self.caches else 0

    def prefill(self, prompt_tokens: Sequence[int]) -> int:
        """Process the whole prompt in parallel; returns the first sampled token."""
        prompt_tokens = [int(t) for t in prompt_tokens]
        if not prompt_tokens:
            raise ValueError("prompt must contain at least one token")
        if self.prefill_stats is not None:
            raise RuntimeError("decoder was already prefilled")
        logits, stats = self.model.forward(
            prompt_tokens, caches=self.caches, predictor=self.predictor
        )
        self.prefill_stats = stats
        self.last_logits = logits
        return greedy_sample(logits)

    def step(self, token: int) -> int:
        """Feed one accepted token through the model; returns the next token."""
        if self.prefill_stats is None:
            raise RuntimeError("prefill() must run before step()")
        logits, stats = self.model.forward(
            [int(token)], caches=self.caches, predictor=self.predictor
        )
        self.decode_stats.append(stats)
        self.last_logits = logits
        return greedy_sample(logits)

    @staticmethod
    def step_batch(
        decoders: Sequence["IncrementalDecoder"], tokens: Sequence[int]
    ) -> List[int]:
        """Advance many decoders one token each through a single fused forward.

        When every decoder shares one model exposing ``forward_batch`` (and
        one predictor), the whole batch runs as **one** quantised forward
        pass; each decoder's statistics, logits and sampled token are
        bit-identical to calling :meth:`step` on it alone.  Models without a
        fused path (or heterogeneous decoder sets) fall back to per-decoder
        stepping, so callers can use this unconditionally.
        """
        decoders = list(decoders)
        tokens = [int(t) for t in tokens]
        if len(tokens) != len(decoders):
            raise ValueError(
                f"got {len(tokens)} tokens for {len(decoders)} decoders"
            )
        if not decoders:
            return []
        for decoder in decoders:
            if decoder.prefill_stats is None:
                raise RuntimeError("prefill() must run before step_batch()")
        model = decoders[0].model
        predictor = decoders[0].predictor
        fused = getattr(model, "forward_batch", None)
        homogeneous = all(
            d.model is model and d.predictor is predictor for d in decoders
        )
        # a batch of one gains nothing from padding/stacking: plain stepping
        # is the same computation without the batch bookkeeping
        if fused is None or not homogeneous or len(decoders) == 1:
            return [d.step(t) for d, t in zip(decoders, tokens)]
        logits, stats_list = fused(
            tokens, [d.caches for d in decoders], predictor=predictor
        )
        next_tokens: List[int] = []
        for b, decoder in enumerate(decoders):
            decoder.decode_stats.append(stats_list[b])
            decoder.last_logits = logits[b : b + 1]
            next_tokens.append(greedy_sample(logits[b]))
        return next_tokens

    @property
    def keys_attended(self) -> int:
        total = self.prefill_stats.keys_attended if self.prefill_stats else 0
        return total + sum(s.keys_attended for s in self.decode_stats)

    @property
    def keys_total(self) -> int:
        total = self.prefill_stats.keys_total if self.prefill_stats else 0
        return total + sum(s.keys_total for s in self.decode_stats)


def generate(
    model,
    prompt_tokens: Sequence[int],
    max_new_tokens: int = 16,
    predictor: Optional[KeyPredictor] = None,
    keep_logits: bool = False,
    eos_token: Optional[int] = None,
) -> GenerationResult:
    """Greedy generation with an explicit prefill / decode split.

    ``model`` may be a :class:`TransformerModel` or
    :class:`~repro.model.transformer.QuantizedTransformer` -- anything exposing
    ``forward(tokens, caches, predictor)`` and ``new_cache()``.
    """
    prompt_tokens = [int(t) for t in prompt_tokens]
    decoder = IncrementalDecoder(model, predictor=predictor)
    next_token = decoder.prefill(prompt_tokens)
    generated: List[int] = []
    history: List[np.ndarray] = [decoder.last_logits] if keep_logits else []

    for step in range(max_new_tokens):
        generated.append(next_token)
        if eos_token is not None and next_token == eos_token:
            break
        if step == max_new_tokens - 1:
            break  # no further token is needed, skip the trailing forward pass
        next_token = decoder.step(next_token)
        if keep_logits:
            history.append(decoder.last_logits)

    return GenerationResult(
        prompt_tokens=prompt_tokens,
        generated_tokens=generated,
        prefill_stats=decoder.prefill_stats,
        decode_stats=decoder.decode_stats,
        logits_history=history,
    )


def stage_gemm_macs(
    config: ModelConfig,
    prompt_len: int,
    decode_len: int,
    batch: int = 1,
) -> dict:
    """Analytic MAC counts of the prefill and decoding stages.

    Returns a dict with per-stage linear-layer MACs and attention MACs,
    which feed the GPU roofline model and the accelerator cost model
    (Fig. 1a breakdown).
    """
    h = config.hidden_size
    f = config.ffn_hidden
    layers = config.n_layers
    per_token_linear = layers * (4 * h * h + 2 * h * f)

    prefill_linear = per_token_linear * prompt_len * batch
    # attention scores + context for causal prefill: ~S^2/2 per layer per head dim
    prefill_attention = layers * prompt_len * prompt_len * h * batch

    decode_linear = per_token_linear * decode_len * batch
    # each decode step attends to the full prefix
    avg_context = prompt_len + decode_len / 2.0
    decode_attention = layers * decode_len * avg_context * 2 * h * batch

    return {
        "prefill_linear_macs": float(prefill_linear),
        "prefill_attention_macs": float(prefill_attention),
        "decode_linear_macs": float(decode_linear),
        "decode_attention_macs": float(decode_attention),
        "weight_bytes": float(config.weight_bytes()),
        "kv_bytes_end": float(config.kv_cache_bytes(prompt_len + decode_len, batch)),
    }
