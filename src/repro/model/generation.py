"""Prefill + autoregressive decoding driver (paper §1 / §2.1).

LLM inference splits into a *prefill* stage that processes the whole prompt in
parallel and a *decoding* stage that generates tokens one at a time, each step
touching the full weights and the growing KV cache.  This module runs both
stages on the NumPy transformer and records the statistics the accelerator
cost models need (tokens, attention density, per-stage GEMM volume).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from .attention import KVCache
from .config import ModelConfig
from .transformer import ForwardStats, TransformerModel

__all__ = [
    "GenerationResult",
    "IncrementalDecoder",
    "KVCorruptionError",
    "greedy_sample",
    "generate",
    "stage_gemm_macs",
]

KeyPredictor = Callable[[np.ndarray, np.ndarray], np.ndarray]


class KVCorruptionError(RuntimeError):
    """A KV cache holds a different row count than the token history implies.

    Every committed token corresponds to exactly one K/V row per layer, so a
    layer whose cache length disagrees with the stream's token history has
    been corrupted (a torn append, a stray write).  Raised by
    :meth:`IncrementalDecoder.verify_kv_rows`; the serving engine treats it
    as a per-request failure -- the stream's KV is untrusted and must be
    rebuilt by re-prefilling -- rather than a process error.
    """

    site = "session.append"


@dataclass
class GenerationResult:
    """Tokens produced by :func:`generate` plus per-stage statistics."""

    prompt_tokens: List[int]
    generated_tokens: List[int]
    prefill_stats: ForwardStats
    decode_stats: List[ForwardStats]
    logits_history: List[np.ndarray] = field(default_factory=list)

    @property
    def n_generated(self) -> int:
        return len(self.generated_tokens)

    @property
    def decode_attention_density(self) -> float:
        totals = sum(s.keys_total for s in self.decode_stats)
        attended = sum(s.keys_attended for s in self.decode_stats)
        return attended / totals if totals else 1.0


def greedy_sample(logits: np.ndarray) -> int:
    """Pick the argmax token from the last position's logits."""
    logits = np.asarray(logits)
    last = logits[-1] if logits.ndim == 2 else logits
    return int(np.argmax(last))


class IncrementalDecoder:
    """One generation stream: a model's KV caches plus prefill/step methods.

    This is the unit the serving layer multiplexes -- each concurrent request
    owns one decoder (its KV caches and per-stage statistics) while all
    decoders share the same underlying model weights.  :func:`generate` is a
    thin single-stream driver over the same API.

    ``model`` may be a :class:`~repro.model.transformer.TransformerModel` or
    :class:`~repro.model.transformer.QuantizedTransformer` -- anything exposing
    ``forward(tokens, caches, predictor)`` and ``new_cache()``.  When
    ``arena`` (a :class:`~repro.serve.kv_arena.PagedKVArena`) is given, the
    decoder's KV caches are thin handles onto one arena session instead of
    standalone buffers; :meth:`release` returns the session's pages once the
    stream is finished.

    With ``prefix_cache=True`` (requires an arena) the decoder consults the
    arena's cross-request prefix index before prefilling: prompt rows whose
    KV pages are already cached are mapped into the session read-only and
    their prefill compute is *skipped* -- only the novel suffix (always at
    least the last prompt row, whose logits sample the first token) runs
    through the model.  K/V rows are deterministic functions of the exact
    token prefix, and the skipped rows' attention statistics are credited
    from the per-row counts the registering prefill recorded, so tokens and
    metrics stay bit-identical to a cold prefill.  Completed prefills
    register their own full prompt pages back into the index.
    """

    def __init__(
        self,
        model,
        predictor: Optional[KeyPredictor] = None,
        arena=None,
        prefix_cache: bool = False,
    ) -> None:
        self.model = model
        self.predictor = predictor
        self.arena = arena
        self.prefix_cache = bool(prefix_cache and arena is not None)
        # route through the model's cache hook so wrappers can customise it
        self.caches: List[KVCache] = (
            model.new_cache() if arena is None else model.new_cache(arena=arena)
        )
        self.prefill_stats: Optional[ForwardStats] = None
        self.decode_stats: List[ForwardStats] = []
        self.last_logits: Optional[np.ndarray] = None
        # resumable partial-prefill state (begin_prefill/prefill_step_batch):
        # the tokens still owed to the KV cache plus the statistics of the
        # chunks already run, folded into prefill_stats on completion
        self._prefill_pending: Optional[List[int]] = None
        self._prefill_done = 0
        self._prefill_partial: Optional[ForwardStats] = None
        # prefix-cache bookkeeping: prompt rows mapped from the index, the
        # prompt itself (for registration on completion) and the per-chunk
        # per-row attention counts accumulated towards that registration
        self.prefix_reused_tokens = 0
        self._prompt_tokens: Optional[List[int]] = None
        self._prefill_rows: Optional[List[tuple]] = None

    def release(self) -> None:
        """Free the KV storage held by this stream (idempotent).

        For arena-backed decoders this returns the session's pages to the
        shared pool; for standalone caches it drops the buffers.  Statistics
        and logits survive -- only the KV history is discarded, so the
        decoder can no longer step afterwards.
        """
        for cache in self.caches:
            cache.release()

    @property
    def seq_len(self) -> int:
        """Number of tokens currently held in the KV cache."""
        return self.caches[0].seq_len if self.caches else 0

    def snapshot_kv(self):
        """Copy this stream's KV off-arena and free its pages.

        Returns the :class:`~repro.serve.kv_arena.KVSnapshot` when the
        decoder is arena-backed; ``None`` for standalone or cache-less
        streams, whose pages cannot be snapshotted -- the caller falls back
        to release + re-prefill.  The decoder object stays fully usable:
        every pending-prefill chunk, statistic and logit survives, and after
        :meth:`restore_kv` the stream continues bit-identically to one that
        was never interrupted.
        """
        if self.arena is None or not self.caches:
            return None
        return self.arena.snapshot_session(self.caches[0].arena_session)

    def restore_kv(self, snapshot) -> None:
        """Fault a :meth:`snapshot_kv` snapshot's pages back into the stream."""
        if self.arena is None or not self.caches:
            raise RuntimeError("restore_kv requires an arena-backed decoder")
        self.arena.restore_session(self.caches[0].arena_session, snapshot)

    def truncate_kv(self, n_rows: int) -> None:
        """Pop the last ``n_rows`` KV rows from every layer (arena streams).

        The speculative-decode rollback hook: rejected draft tokens'
        already-appended rows are discarded through
        :meth:`~repro.serve.kv_arena.PagedKVArena.truncate_session`, so the
        stream's KV is bit-identical to one that never saw the drafts.
        """
        if int(n_rows) == 0:
            return
        if self.arena is None or not self.caches:
            raise RuntimeError("truncate_kv requires an arena-backed decoder")
        self.arena.truncate_session(self.caches[0].arena_session, int(n_rows))

    def verify_kv_rows(self, expected: int) -> None:
        """Integrity check: every layer must hold exactly ``expected`` KV rows.

        The row count per layer is a pure function of the tokens fed through
        the decoder, so any divergence means the cache was corrupted between
        forward passes; raises :class:`KVCorruptionError` naming the first
        bad layer.  Cache-less models (stub streams with ``new_cache() ==
        []``) hold no rows to verify and always pass.
        """
        expected = int(expected)
        for layer, cache in enumerate(self.caches):
            got = cache.seq_len
            if got != expected:
                raise KVCorruptionError(
                    f"KV corruption: layer {layer} holds {got} rows where the "
                    f"token history implies {expected}"
                )

    def prefill(self, prompt_tokens: Sequence[int]) -> int:
        """Process the whole prompt in parallel; returns the first sampled token."""
        prompt_tokens = [int(t) for t in prompt_tokens]
        if not prompt_tokens:
            raise ValueError("prompt must contain at least one token")
        if self.prefill_stats is not None or self._prefill_pending is not None:
            raise RuntimeError("decoder was already prefilled")
        n_reused, credit_att, credit_tot = self._acquire_prefix(prompt_tokens)
        # run only the novel suffix; the right-aligned causal mask gives the
        # suffix rows their absolute positions over the mapped cache rows, so
        # each row is bit-identical to the same row of a cold full prefill
        logits, stats = self.model.forward(
            prompt_tokens[n_reused:], caches=self.caches, predictor=self.predictor
        )
        if n_reused:
            stats.keys_attended += int(credit_att.sum())
            stats.keys_total += int(credit_tot.sum())
            stats.tokens_processed += n_reused
            if stats.row_keys_attended is not None:
                stats.row_keys_attended = np.concatenate(
                    [credit_att, stats.row_keys_attended]
                )
                stats.row_keys_total = np.concatenate(
                    [credit_tot, stats.row_keys_total]
                )
        self.prefill_stats = stats
        self.last_logits = logits
        if self.prefix_cache:
            self._prompt_tokens = prompt_tokens
            self._prefill_rows = (
                [(stats.row_keys_attended, stats.row_keys_total)]
                if stats.row_keys_attended is not None
                else None
            )
            self._register_prefix()
        return greedy_sample(logits)

    def _acquire_prefix(self, prompt_tokens: List[int]):
        """Map cached prompt pages into this decoder's fresh arena session."""
        if not self.prefix_cache:
            return 0, None, None
        n_reused, att, tot = self.arena.acquire_prefix(
            self.caches[0].arena_session, prompt_tokens
        )
        self.prefix_reused_tokens = n_reused
        return n_reused, att, tot

    def _register_prefix(self) -> None:
        """Index this decoder's completed prompt pages for future reuse."""
        rows, self._prefill_rows = self._prefill_rows, None
        if not self.prefix_cache or self._prompt_tokens is None or rows is None:
            return
        if any(att is None or tot is None for att, tot in rows):
            return  # a chunk ran without per-row stats: nothing registrable
        att = np.concatenate([np.asarray(a, dtype=np.int64) for a, _ in rows])
        tot = np.concatenate([np.asarray(t, dtype=np.int64) for _, t in rows])
        self.arena.register_prefix(
            self.caches[0].arena_session, self._prompt_tokens, att, tot
        )

    # -- chunked prefill (the serving engine's batched admission path) ---------

    def begin_prefill(self, prompt_tokens: Sequence[int]) -> None:
        """Register the prompt for incremental prefill without running it.

        The prompt is then fed to the model in ragged chunks by
        :meth:`prefill_step_batch`; until the last chunk lands the decoder is
        *mid-prefill* (:attr:`prefill_remaining` > 0, stepping is refused)
        and its partial statistics stay visible through
        :attr:`keys_attended` / :attr:`keys_total`.
        """
        prompt_tokens = [int(t) for t in prompt_tokens]
        if not prompt_tokens:
            raise ValueError("prompt must contain at least one token")
        if self.prefill_stats is not None or self._prefill_pending is not None:
            raise RuntimeError("decoder was already prefilled")
        self._prefill_pending = prompt_tokens
        self._prefill_done = 0
        self._prefill_partial = ForwardStats()
        if self.prefix_cache:
            self._prompt_tokens = prompt_tokens
            self._prefill_rows = []
            # cache-hit rows count as already-done chunks: the existing
            # resume-from-chunk machinery then runs only the novel suffix
            # (n_reused <= len(prompt) - 1, so at least one row remains)
            n_reused, att, tot = self._acquire_prefix(prompt_tokens)
            if n_reused:
                self._prefill_done = n_reused
                self._prefill_partial = ForwardStats(
                    keys_attended=int(att.sum()),
                    keys_total=int(tot.sum()),
                    tokens_processed=n_reused,
                )
                self._prefill_rows.append((att, tot))

    @property
    def prefill_remaining(self) -> int:
        """Prompt tokens not yet fed through the model (0 once prefilled)."""
        if self._prefill_pending is None:
            return 0
        return len(self._prefill_pending) - self._prefill_done

    @staticmethod
    def prefill_step_batch(
        prefills: Sequence["IncrementalDecoder"],
        chunk_sizes: Sequence[int],
        decodes: Sequence["IncrementalDecoder"] = (),
        decode_tokens: Sequence[int] = (),
        draft_tokens: Optional[Sequence[Sequence[int]]] = None,
    ) -> Tuple[List[Optional[int]], List]:
        """Advance a mixed batch: prefill chunks plus decode rows, one pass.

        ``prefills[i]`` (begun via :meth:`begin_prefill`) contributes its next
        ``chunk_sizes[i]`` prompt tokens; ``decodes[j]`` contributes the one
        accepted token ``decode_tokens[j]``.  The whole mixed batch runs as a
        single :meth:`~repro.model.transformer.QuantizedTransformer.prefill_batch`
        forward -- one GEMM per weight matrix for every row in the step --
        and each stream's logits, KV rows and statistics are bit-identical to
        running it alone (one-shot :meth:`prefill` / :meth:`step`).

        Returns ``(prefill_tokens, decode_tokens)``: ``prefill_tokens[i]`` is
        the first sampled token when decoder ``i`` finished its prompt this
        step, ``None`` while chunks remain; ``decode_tokens[j]`` is stream
        ``j``'s next token.  All decoders must share one model exposing
        ``prefill_batch`` (and one predictor); the serving engine falls back
        to one-shot serial prefill for anything else.

        **Speculative decode** (``draft_tokens`` given, one token list per
        decode stream, empty lists allowed): stream ``j``'s chunk becomes
        ``[decode_tokens[j]] + draft_tokens[j]`` -- the accepted token plus
        up to ``k`` drafter proposals -- and the fused pass verifies all of
        them at once.  The greedy accept rule then runs over the stream's
        per-row logits: row ``i``'s argmax is always emitted (row 0 is
        exactly the token one-token decode would produce); draft ``i+1`` is
        accepted only while it *equals* that argmax, the first mismatch emits
        the corrected token and stops, and a fully-accepted draft list emits
        one bonus token from the final row.  Rejected drafts' KV rows are
        popped via :meth:`truncate_kv`, so the stream's tokens **and** KV are
        bit-identical to one-token decode -- the drafter only ever changes
        how many verified tokens one pass yields.  In this mode
        ``decode_tokens[j]`` in the return value is the *list* of emitted
        tokens (length ``accepted + 1``) and speculative streams require
        arena-backed decoders (rollback needs
        :meth:`~repro.serve.kv_arena.PagedKVArena.truncate_session`).
        """
        prefills = list(prefills)
        decodes = list(decodes)
        chunk_sizes = [int(n) for n in chunk_sizes]
        decode_tokens = [int(t) for t in decode_tokens]
        if len(chunk_sizes) != len(prefills):
            raise ValueError(
                f"got {len(chunk_sizes)} chunk sizes for {len(prefills)} decoders"
            )
        if len(decode_tokens) != len(decodes):
            raise ValueError(
                f"got {len(decode_tokens)} tokens for {len(decodes)} decoders"
            )
        drafts: Optional[List[List[int]]] = None
        if draft_tokens is not None:
            drafts = [[int(t) for t in d] for d in draft_tokens]
            if len(drafts) != len(decodes):
                raise ValueError(
                    f"got {len(drafts)} draft lists for {len(decodes)} decoders"
                )
        if not prefills and not decodes:
            return [], []
        everyone = prefills + decodes
        model = everyone[0].model
        predictor = everyone[0].predictor
        fused = getattr(model, "prefill_batch", None)
        if fused is None:
            raise RuntimeError("model does not expose prefill_batch")
        if not all(d.model is model and d.predictor is predictor for d in everyone):
            raise RuntimeError("mixed prefill batches need one shared model")

        chunks: List[List[int]] = []
        totals: List[int] = []
        for decoder, n in zip(prefills, chunk_sizes):
            if decoder._prefill_pending is None:
                raise RuntimeError("begin_prefill() must run before chunking")
            if not 1 <= n <= decoder.prefill_remaining:
                raise ValueError(
                    f"chunk of {n} rows outside the remaining "
                    f"{decoder.prefill_remaining}-token prompt"
                )
            start = decoder._prefill_done
            chunks.append(decoder._prefill_pending[start : start + n])
            totals.append(len(decoder._prefill_pending))
        for j, (decoder, token) in enumerate(zip(decodes, decode_tokens)):
            if decoder.prefill_stats is None:
                raise RuntimeError("prefill must finish before decode steps")
            tail = drafts[j] if drafts is not None else []
            chunks.append([token] + tail)
            totals.append(decoder.seq_len + 1 + len(tail))

        spec_idx = (
            [len(prefills) + j for j, d in enumerate(drafts) if d]
            if drafts is not None
            else []
        )
        if spec_idx:
            logits, stats_list, row_logits = fused(
                chunks,
                [d.caches for d in everyone],
                predictor=predictor,
                total_lens=totals,
                row_logits_for=spec_idx,
            )
        else:
            logits, stats_list = fused(
                chunks,
                [d.caches for d in everyone],
                predictor=predictor,
                total_lens=totals,
            )
            row_logits = {}

        prefill_out: List[Optional[int]] = []
        for i, (decoder, n) in enumerate(zip(prefills, chunk_sizes)):
            partial = decoder._prefill_partial
            partial.keys_attended += stats_list[i].keys_attended
            partial.keys_total += stats_list[i].keys_total
            partial.tokens_processed += stats_list[i].tokens_processed
            if decoder._prefill_rows is not None:
                decoder._prefill_rows.append(
                    (
                        stats_list[i].row_keys_attended,
                        stats_list[i].row_keys_total,
                    )
                )
            decoder._prefill_done += n
            if decoder.prefill_remaining == 0:
                decoder.prefill_stats = partial
                decoder._prefill_pending = None
                decoder._prefill_partial = None
                decoder.last_logits = logits[i : i + 1]
                decoder._register_prefix()
                prefill_out.append(greedy_sample(logits[i]))
            else:
                prefill_out.append(None)
        decode_out: List = []
        for j, decoder in enumerate(decodes):
            b = len(prefills) + j
            decoder.decode_stats.append(stats_list[b])
            if drafts is None:
                decoder.last_logits = logits[b : b + 1]
                decode_out.append(greedy_sample(logits[b]))
                continue
            drafts_j = drafts[j]
            if not drafts_j:
                decoder.last_logits = logits[b : b + 1]
                decode_out.append([greedy_sample(logits[b])])
                continue
            if decoder.arena is not None:
                decoder.arena.stats.draft_rows_appended += len(drafts_j)
            # greedy accept: row i's argmax is what one-token decode would
            # emit at that position, so emitting it (and accepting drafts
            # only while they match) reproduces the serial stream exactly
            rows = row_logits[b]
            out_tokens: List[int] = []
            kept = 0
            for i, d in enumerate(drafts_j):
                t = int(np.argmax(rows[i]))
                out_tokens.append(t)
                if t != d:
                    break
                kept += 1
            if kept == len(drafts_j):
                out_tokens.append(int(np.argmax(rows[kept])))
            decoder.truncate_kv(len(drafts_j) - kept)
            decoder.last_logits = rows[kept : kept + 1]
            decode_out.append(out_tokens)
        return prefill_out, decode_out

    def step(self, token: int) -> int:
        """Feed one accepted token through the model; returns the next token."""
        if self.prefill_stats is None:
            raise RuntimeError("prefill() must run before step()")
        logits, stats = self.model.forward(
            [int(token)], caches=self.caches, predictor=self.predictor
        )
        self.decode_stats.append(stats)
        self.last_logits = logits
        return greedy_sample(logits)

    @staticmethod
    def step_batch(
        decoders: Sequence["IncrementalDecoder"], tokens: Sequence[int]
    ) -> List[int]:
        """Advance many decoders one token each through a single fused forward.

        When every decoder shares one model exposing ``forward_batch`` (and
        one predictor), the whole batch runs as **one** quantised forward
        pass; each decoder's statistics, logits and sampled token are
        bit-identical to calling :meth:`step` on it alone.  Models without a
        fused path (or heterogeneous decoder sets) fall back to per-decoder
        stepping, so callers can use this unconditionally.
        """
        decoders = list(decoders)
        tokens = [int(t) for t in tokens]
        if len(tokens) != len(decoders):
            raise ValueError(
                f"got {len(tokens)} tokens for {len(decoders)} decoders"
            )
        if not decoders:
            return []
        for decoder in decoders:
            if decoder.prefill_stats is None:
                raise RuntimeError("prefill() must run before step_batch()")
        model = decoders[0].model
        predictor = decoders[0].predictor
        fused = getattr(model, "forward_batch", None)
        homogeneous = all(
            d.model is model and d.predictor is predictor for d in decoders
        )
        # a batch of one gains nothing from padding/stacking: plain stepping
        # is the same computation without the batch bookkeeping
        if fused is None or not homogeneous or len(decoders) == 1:
            return [d.step(t) for d, t in zip(decoders, tokens)]
        logits, stats_list = fused(
            tokens, [d.caches for d in decoders], predictor=predictor
        )
        next_tokens: List[int] = []
        for b, decoder in enumerate(decoders):
            decoder.decode_stats.append(stats_list[b])
            decoder.last_logits = logits[b : b + 1]
            next_tokens.append(greedy_sample(logits[b]))
        return next_tokens

    @property
    def keys_attended(self) -> int:
        base = self.prefill_stats or self._prefill_partial
        total = base.keys_attended if base else 0
        return total + sum(s.keys_attended for s in self.decode_stats)

    @property
    def keys_total(self) -> int:
        base = self.prefill_stats or self._prefill_partial
        total = base.keys_total if base else 0
        return total + sum(s.keys_total for s in self.decode_stats)


def generate(
    model,
    prompt_tokens: Sequence[int],
    max_new_tokens: int = 16,
    predictor: Optional[KeyPredictor] = None,
    keep_logits: bool = False,
    eos_token: Optional[int] = None,
) -> GenerationResult:
    """Greedy generation with an explicit prefill / decode split.

    ``model`` may be a :class:`TransformerModel` or
    :class:`~repro.model.transformer.QuantizedTransformer` -- anything exposing
    ``forward(tokens, caches, predictor)`` and ``new_cache()``.
    """
    prompt_tokens = [int(t) for t in prompt_tokens]
    decoder = IncrementalDecoder(model, predictor=predictor)
    next_token = decoder.prefill(prompt_tokens)
    generated: List[int] = []
    history: List[np.ndarray] = [decoder.last_logits] if keep_logits else []

    for step in range(max_new_tokens):
        generated.append(next_token)
        if eos_token is not None and next_token == eos_token:
            break
        if step == max_new_tokens - 1:
            break  # no further token is needed, skip the trailing forward pass
        next_token = decoder.step(next_token)
        if keep_logits:
            history.append(decoder.last_logits)

    return GenerationResult(
        prompt_tokens=prompt_tokens,
        generated_tokens=generated,
        prefill_stats=decoder.prefill_stats,
        decode_stats=decoder.decode_stats,
        logits_history=history,
    )


def stage_gemm_macs(
    config: ModelConfig,
    prompt_len: int,
    decode_len: int,
    batch: int = 1,
) -> dict:
    """Analytic MAC counts of the prefill and decoding stages.

    Returns a dict with per-stage linear-layer MACs and attention MACs,
    which feed the GPU roofline model and the accelerator cost model
    (Fig. 1a breakdown).
    """
    h = config.hidden_size
    f = config.ffn_hidden
    layers = config.n_layers
    per_token_linear = layers * (4 * h * h + 2 * h * f)

    prefill_linear = per_token_linear * prompt_len * batch
    # attention scores + context for causal prefill: ~S^2/2 per layer per head dim
    prefill_attention = layers * prompt_len * prompt_len * h * batch

    decode_linear = per_token_linear * decode_len * batch
    # each decode step attends to the full prefix
    avg_context = prompt_len + decode_len / 2.0
    decode_attention = layers * decode_len * avg_context * 2 * h * batch

    return {
        "prefill_linear_macs": float(prefill_linear),
        "prefill_attention_macs": float(prefill_attention),
        "decode_linear_macs": float(decode_linear),
        "decode_attention_macs": float(decode_attention),
        "weight_bytes": float(config.weight_bytes()),
        "kv_bytes_end": float(config.kv_cache_bytes(prompt_len + decode_len, batch)),
    }
