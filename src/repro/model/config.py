"""Model configurations for the LLMs evaluated in the paper.

The paper benchmarks Llama-7B/13B, Qwen-7B, Bloom-1B7 and OPT-1B3.  Only the
architectural shapes matter for the accelerator study (hidden size, number of
layers/heads, FFN width, vocabulary), so the configs below mirror the public
model cards.  A ``tiny`` configuration is provided for fast functional tests
and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["ModelConfig", "MODEL_CONFIGS", "get_model_config", "scaled_down_config"]


@dataclass(frozen=True)
class ModelConfig:
    """Architectural description of a decoder-only transformer."""

    name: str
    hidden_size: int
    n_layers: int
    n_heads: int
    ffn_hidden: int
    vocab_size: int
    max_seq_len: int = 8192
    norm: str = "layernorm"
    activation: str = "gelu"

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.n_heads

    @property
    def n_parameters(self) -> int:
        """Approximate parameter count (attention + FFN + embeddings)."""
        attn = 4 * self.hidden_size * self.hidden_size
        ffn = 2 * self.hidden_size * self.ffn_hidden
        per_layer = attn + ffn
        embed = self.vocab_size * self.hidden_size
        return self.n_layers * per_layer + embed

    def weight_bytes(self, bits: int = 8) -> int:
        """Model weight footprint at the given integer precision."""
        return self.n_parameters * bits // 8

    def kv_cache_bytes(self, seq_len: int, batch: int = 1, bits: int = 8) -> int:
        """KV-cache footprint for ``seq_len`` cached tokens."""
        per_token = 2 * self.n_layers * self.hidden_size * bits // 8
        return per_token * seq_len * batch

    def __post_init__(self) -> None:
        if self.hidden_size % self.n_heads != 0:
            raise ValueError(
                f"hidden_size {self.hidden_size} not divisible by n_heads {self.n_heads}"
            )


MODEL_CONFIGS: Dict[str, ModelConfig] = {
    "tiny": ModelConfig(
        name="tiny",
        hidden_size=64,
        n_layers=2,
        n_heads=4,
        ffn_hidden=256,
        vocab_size=512,
        max_seq_len=512,
    ),
    "small": ModelConfig(
        name="small",
        hidden_size=128,
        n_layers=4,
        n_heads=8,
        ffn_hidden=512,
        vocab_size=1024,
        max_seq_len=2048,
    ),
    "OPT1B3": ModelConfig(
        name="OPT1B3",
        hidden_size=2048,
        n_layers=24,
        n_heads=32,
        ffn_hidden=8192,
        vocab_size=50272,
        activation="relu",
    ),
    "Bloom1B7": ModelConfig(
        name="Bloom1B7",
        hidden_size=2048,
        n_layers=24,
        n_heads=16,
        ffn_hidden=8192,
        vocab_size=250880,
    ),
    "Qwen7B": ModelConfig(
        name="Qwen7B",
        hidden_size=4096,
        n_layers=32,
        n_heads=32,
        ffn_hidden=11008,
        vocab_size=151936,
        norm="rmsnorm",
        activation="silu",
    ),
    "Llama7B": ModelConfig(
        name="Llama7B",
        hidden_size=4096,
        n_layers=32,
        n_heads=32,
        ffn_hidden=11008,
        vocab_size=32000,
        norm="rmsnorm",
        activation="silu",
    ),
    "Llama13B": ModelConfig(
        name="Llama13B",
        hidden_size=5120,
        n_layers=40,
        n_heads=40,
        ffn_hidden=13824,
        vocab_size=32000,
        norm="rmsnorm",
        activation="silu",
    ),
}


def get_model_config(name: str) -> ModelConfig:
    """Look up a model configuration by name (case-sensitive, see MODEL_CONFIGS)."""
    if name not in MODEL_CONFIGS:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_CONFIGS)}"
        )
    return MODEL_CONFIGS[name]


def scaled_down_config(name: str, scale: int = 32) -> ModelConfig:
    """A functionally-executable miniature of a large config.

    Divides the hidden/FFN/vocab sizes by ``scale`` (keeping head divisibility)
    and caps the layer count, so that end-to-end functional runs of the
    "Llama7B-like" architecture finish in seconds while preserving the layer
    structure used by the cost models.
    """
    base = get_model_config(name)
    n_heads = max(2, base.n_heads // max(1, scale // 4))
    hidden = max(n_heads * 16, base.hidden_size // scale)
    hidden -= hidden % n_heads
    return ModelConfig(
        name=f"{base.name}-mini",
        hidden_size=hidden,
        n_layers=min(base.n_layers, 4),
        n_heads=n_heads,
        ffn_hidden=max(4 * hidden, base.ffn_hidden // scale),
        vocab_size=max(256, base.vocab_size // scale),
        max_seq_len=base.max_seq_len,
        norm=base.norm,
        activation=base.activation,
    )
