"""Basic neural-network layers in NumPy used by the LLM substrate.

The paper's non-linear operators (softmax, GELU, layer normalisation) run on
the accelerator's FP16 special-function unit, so they are kept in floating
point here while the GEMMs are the integer-quantised operands MCBP optimises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "softmax",
    "gelu",
    "silu",
    "relu",
    "layer_norm",
    "rms_norm",
    "Linear",
    "Embedding",
    "ACTIVATIONS",
]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation)."""
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def silu(x: np.ndarray) -> np.ndarray:
    """Sigmoid linear unit (swish), used by Llama/Qwen FFNs."""
    x = np.asarray(x, dtype=np.float64)
    return x / (1.0 + np.exp(-x))


def relu(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    return np.maximum(x, 0.0)


ACTIVATIONS = {"gelu": gelu, "silu": silu, "relu": relu}


def layer_norm(
    x: np.ndarray,
    gamma: Optional[np.ndarray] = None,
    beta: Optional[np.ndarray] = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """Layer normalisation over the last axis."""
    x = np.asarray(x, dtype=np.float64)
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    out = (x - mean) / np.sqrt(var + eps)
    if gamma is not None:
        out = out * gamma
    if beta is not None:
        out = out + beta
    return out


def rms_norm(
    x: np.ndarray, gamma: Optional[np.ndarray] = None, eps: float = 1e-5
) -> np.ndarray:
    """RMS normalisation over the last axis (Llama-style)."""
    x = np.asarray(x, dtype=np.float64)
    rms = np.sqrt((x**2).mean(axis=-1, keepdims=True) + eps)
    out = x / rms
    if gamma is not None:
        out = out * gamma
    return out


@dataclass
class Linear:
    """A float linear layer ``y = x @ W.T + b``."""

    weight: np.ndarray  # (out_features, in_features)
    bias: Optional[np.ndarray] = None

    @classmethod
    def random(
        cls,
        in_features: int,
        out_features: int,
        std: float = 0.02,
        seed: Optional[int] = None,
        with_bias: bool = False,
    ) -> "Linear":
        rng = np.random.default_rng(seed)
        weight = rng.normal(0.0, std, size=(out_features, in_features))
        bias = np.zeros(out_features) if with_bias else None
        return cls(weight=weight, bias=bias)

    @property
    def in_features(self) -> int:
        return int(self.weight.shape[1])

    @property
    def out_features(self) -> int:
        return int(self.weight.shape[0])

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


@dataclass
class Embedding:
    """Token embedding lookup table."""

    table: np.ndarray  # (vocab, hidden)

    @classmethod
    def random(
        cls, vocab_size: int, hidden: int, std: float = 0.02, seed: Optional[int] = None
    ) -> "Embedding":
        rng = np.random.default_rng(seed)
        return cls(table=rng.normal(0.0, std, size=(vocab_size, hidden)))

    @property
    def vocab_size(self) -> int:
        return int(self.table.shape[0])

    def __call__(self, token_ids: np.ndarray) -> np.ndarray:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.size and (token_ids.min() < 0 or token_ids.max() >= self.vocab_size):
            raise ValueError("token id out of vocabulary range")
        return self.table[token_ids]
