"""Bit-Grained Progressive Prediction (BGPP, paper §3.3, Fig. 9 and Fig. 16).

BGPP replaces the value-level top-k attention predictor with a progressive,
bit-serial filter.  Key bit planes are streamed MSB-first; after every round
the partial attention estimates are compared against a radius-based threshold
(Eq. 1 in the paper)

``theta_r = max(A_hat_r) - alpha_r * radius``

and only the surviving keys fetch their next bit plane from memory.  This
terminates both the computation and the KV-cache traffic of obviously trivial
keys early.

The module provides:

* :func:`bgpp_select` -- the progressive filter for one query row, returning
  the selected key indices together with exact accounting of the KV bits
  loaded and the multiply-accumulate work performed;
* :func:`value_topk_select` -- the conventional value-level top-k predictor
  used as a baseline (paper §2.2, Fig. 3);
* :func:`exact_topk` / :func:`selection_recall` -- oracles for measuring how
  faithful either predictor is to exact attention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .bitslice import to_bitslices

__all__ = [
    "BGPPConfig",
    "BGPPResult",
    "TopKResult",
    "bgpp_select",
    "bgpp_select_batch",
    "value_topk_select",
    "exact_topk",
    "selection_recall",
    "attention_sparsity",
]


@dataclass
class BGPPConfig:
    """Parameters of the progressive filter.

    Attributes
    ----------
    rounds:
        Number of filtering rounds, i.e. how many key bit planes (MSB first)
        are examined.  The paper uses a small fixed number (typically 4).
    radius:
        The softmax "radius": keys whose estimated score falls more than
        ``alpha * radius`` below the running maximum are filtered (default 3,
        paper §3.3).
    alpha:
        Per-round pruning aggressiveness, either a scalar applied to every
        round or one value per round; the paper sweeps 0.3-0.8 and settles on
        0.5-0.6.
    key_bits:
        Bit width of the stored keys (including sign).
    query_bits:
        Bit width used for the query during prediction (paper: 4-bit MSBs).
    score_scale:
        Dequantisation scale applied to integer partial sums before they are
        compared against ``radius`` (the product of the Q and K quantisation
        scales and the :math:`1/\\sqrt{d}` attention scaling).
    min_keys:
        Never prune below this many surviving keys (guards degenerate cases).
    """

    rounds: int = 4
    radius: float = 3.0
    alpha: float | Sequence[float] = 0.55
    key_bits: int = 8
    query_bits: int = 4
    score_scale: float = 1.0
    min_keys: int = 1

    def alpha_for_round(self, round_index: int) -> float:
        if isinstance(self.alpha, (int, float)):
            return float(self.alpha)
        seq = list(self.alpha)
        if not seq:
            raise ValueError("alpha sequence must not be empty")
        return float(seq[min(round_index, len(seq) - 1)])

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.radius < 0:
            raise ValueError("radius must be >= 0")
        if self.key_bits < 2:
            raise ValueError("key_bits must be >= 2")
        if self.min_keys < 1:
            raise ValueError("min_keys must be >= 1")


@dataclass
class BGPPResult:
    """Outcome of one progressive prediction pass."""

    selected: np.ndarray
    estimated_scores: np.ndarray
    survivors_per_round: List[int]
    kv_bits_loaded: int
    mac_ops: int
    rounds_executed: int
    early_terminated: bool

    @property
    def selected_fraction(self) -> float:
        n = self.estimated_scores.shape[0]
        return float(self.selected.size) / n if n else 0.0


@dataclass
class TopKResult:
    """Outcome of the value-level top-k baseline predictor."""

    selected: np.ndarray
    estimated_scores: np.ndarray
    kv_bits_loaded: int
    mac_ops: int


def _reduced_precision_query(query: np.ndarray, query_bits: int, full_bits: int = 8) -> np.ndarray:
    """Keep only the ``query_bits`` most significant bits of the query values."""
    if query_bits >= full_bits:
        return query.astype(np.int64)
    shift = full_bits - query_bits
    return (query.astype(np.int64) >> shift) << shift


def _signed_key_planes(keys: np.ndarray, key_bits: int) -> List[np.ndarray]:
    """Return key bit planes MSB-first as {-1, 0, 1} matrices with signs applied."""
    slices = to_bitslices(keys, bits=key_bits, fmt="sign_magnitude")
    sign = slices[-1].astype(np.int64)
    sign_factor = 1 - 2 * sign
    planes: List[np.ndarray] = []
    for i in reversed(range(key_bits - 1)):  # MSB magnitude plane first
        planes.append(slices[i].astype(np.int64) * sign_factor)
    return planes


def _empty_result() -> BGPPResult:
    """Degenerate result for an empty key set (shared by both select paths)."""
    return BGPPResult(
        selected=np.zeros(0, dtype=np.int64),
        estimated_scores=np.zeros(0, dtype=np.float64),
        survivors_per_round=[],
        kv_bits_loaded=0,
        mac_ops=0,
        rounds_executed=0,
        early_terminated=False,
    )


def bgpp_select(
    query: np.ndarray,
    keys: np.ndarray,
    config: Optional[BGPPConfig] = None,
):
    """Run the progressive bit-grained filter for one query row or a batch.

    Parameters
    ----------
    query:
        Integer query vector of length ``d`` (already quantised), or a
        ``(B, d)`` matrix of query rows.  A 2-D input dispatches to
        :func:`bgpp_select_batch` and returns a list of per-row results whose
        fields are bit-identical to running each row through the 1-D path.
    keys:
        Integer key matrix of shape ``(n_keys, d)``.
    config:
        Filter parameters; defaults to :class:`BGPPConfig`.

    Returns
    -------
    BGPPResult or List[BGPPResult]
        Selected key indices, per-round survivor counts and exact KV-traffic /
        compute accounting (one result per query row for batched input).
    """
    config = config or BGPPConfig()
    query = np.asarray(query)
    keys = np.asarray(keys)
    if query.ndim == 2:
        return bgpp_select_batch(query, keys, config=config)
    if query.ndim != 1:
        raise ValueError(f"query must be 1-D or 2-D, got shape {query.shape}")
    if keys.ndim != 2 or keys.shape[1] != query.shape[0]:
        raise ValueError(
            f"keys must have shape (n, {query.shape[0]}), got {keys.shape}"
        )
    n_keys, d = keys.shape
    if n_keys == 0:
        return _empty_result()

    q = _reduced_precision_query(query, config.query_bits, full_bits=config.key_bits)
    planes = _signed_key_planes(keys, config.key_bits)
    n_magnitude_planes = len(planes)
    rounds = min(config.rounds, n_magnitude_planes)

    alive = np.arange(n_keys)
    psum = np.zeros(n_keys, dtype=np.int64)
    kv_bits = 0
    mac_ops = 0
    survivors: List[int] = []
    early_terminated = False

    # sign plane is fetched together with the first magnitude plane
    kv_bits += n_keys * d

    for r in range(rounds):
        plane = planes[r]
        shift = config.key_bits - 2 - r  # weight of this magnitude plane
        # fetch the r-th bit of every surviving key
        kv_bits += alive.size * d
        partial = plane[alive] @ q
        mac_ops += alive.size * d
        psum[alive] = psum[alive] + (partial << shift)

        scores = psum[alive].astype(np.float64) * config.score_scale
        current_max = scores.max()
        threshold = current_max - config.alpha_for_round(r) * config.radius

        if threshold <= scores.min():
            # clock-gated clipping: nothing can be pruned this round
            survivors.append(int(alive.size))
            if r == rounds - 1:
                break
            continue

        keep_mask = scores >= threshold
        if keep_mask.sum() < config.min_keys:
            order = np.argsort(scores)[::-1]
            keep_mask = np.zeros_like(keep_mask)
            keep_mask[order[: config.min_keys]] = True
        alive = alive[keep_mask]
        survivors.append(int(alive.size))
        if alive.size <= config.min_keys:
            early_terminated = True
            break

    final_scores = psum.astype(np.float64) * config.score_scale
    return BGPPResult(
        selected=np.sort(alive),
        estimated_scores=final_scores,
        survivors_per_round=survivors,
        kv_bits_loaded=int(kv_bits),
        mac_ops=int(mac_ops),
        rounds_executed=len(survivors),
        early_terminated=early_terminated,
    )


def bgpp_select_batch(
    queries: np.ndarray,
    keys: np.ndarray,
    config: Optional[BGPPConfig] = None,
    key_lengths: Optional[Sequence[int]] = None,
    score_scales: Optional[Sequence[float]] = None,
) -> List[BGPPResult]:
    """Progressive filtering of a whole ``(B, d)`` query batch in one pass.

    The expensive per-round work -- slicing the key bit planes and the
    plane/query products -- is shared across the batch: the planes are built
    once and each round issues a single ``(n_keys, d) @ (d, B)`` product
    instead of ``B`` separate GEMVs.  The per-query threshold logic then runs
    on the precomputed columns, so every returned :class:`BGPPResult` is
    field-for-field identical to :func:`bgpp_select` on that row (including
    the per-query KV-traffic and MAC accounting, which only count the keys
    that were still alive for that query).

    Parameters
    ----------
    key_lengths:
        Optional per-query key-prefix lengths for *ragged* batches: query row
        ``b`` only considers ``keys[:key_lengths[b]]``, exactly as if it were
        run through :func:`bgpp_select` against that truncated key matrix
        (causal prefill rows and co-scheduled decode streams have different
        context lengths but share one key buffer).  ``None`` means every query
        sees all keys.
    score_scales:
        Optional per-query dequantisation scale overriding
        ``config.score_scale`` row by row (the attention predictors fit the
        scale from per-row query/key statistics).
    """
    config = config or BGPPConfig()
    queries = np.asarray(queries)
    keys = np.asarray(keys)
    if queries.ndim != 2:
        raise ValueError(f"queries must be 2-D, got shape {queries.shape}")
    if keys.ndim != 2 or keys.shape[1] != queries.shape[1]:
        raise ValueError(
            f"keys must have shape (n, {queries.shape[1]}), got {keys.shape}"
        )
    n_queries = queries.shape[0]
    n_keys, d = keys.shape
    if n_queries == 0:
        return []

    if key_lengths is None:
        lengths = np.full(n_queries, n_keys, dtype=np.int64)
    else:
        lengths = np.asarray(key_lengths, dtype=np.int64)
        if lengths.shape != (n_queries,):
            raise ValueError(
                f"key_lengths must have shape ({n_queries},), got {lengths.shape}"
            )
        if lengths.size and (lengths.min() < 0 or lengths.max() > n_keys):
            raise ValueError("key_lengths entries must lie in [0, n_keys]")
    if score_scales is None:
        scales = np.full(n_queries, float(config.score_scale))
    else:
        scales = np.asarray(score_scales, dtype=np.float64)
        if scales.shape != (n_queries,):
            raise ValueError(
                f"score_scales must have shape ({n_queries},), got {scales.shape}"
            )

    if n_keys == 0:
        return [_empty_result() for _ in range(n_queries)]

    q_batch = _reduced_precision_query(queries, config.query_bits, full_bits=config.key_bits)
    planes = _signed_key_planes(keys, config.key_bits)
    rounds = min(config.rounds, len(planes))

    psum = np.zeros((n_queries, n_keys), dtype=np.int64)
    # ragged batches: row b only ever sees its first key_lengths[b] keys
    alive_mask = np.arange(n_keys)[None, :] < lengths[:, None]
    done = lengths == 0  # nothing to filter for empty prefixes
    early = np.zeros(n_queries, dtype=bool)
    # sign plane is fetched together with the first magnitude plane
    kv_bits = lengths * d
    mac_ops = np.zeros(n_queries, dtype=np.int64)
    survivors: List[List[int]] = [[] for _ in range(n_queries)]

    for r in range(rounds):
        active = np.flatnonzero(~done)
        if active.size == 0:
            break
        shift = config.key_bits - 2 - r  # weight of this magnitude plane
        alpha = config.alpha_for_round(r)
        # one shared pass over the key plane for every still-active query,
        # restricted to the union of keys any of them still keeps alive so
        # pruned keys cost no compute in later rounds (round 0: all keys)
        union = np.flatnonzero(alive_mask[active].any(axis=0))
        partial = planes[r][union] @ q_batch[active].T  # (n_union, n_active)
        for j, b in enumerate(active):
            alive = np.flatnonzero(alive_mask[b])
            kv_bits[b] += alive.size * d
            mac_ops[b] += alive.size * d
            rows = np.searchsorted(union, alive)  # alive is a subset of union
            psum[b, alive] += partial[rows, j] << shift

            scores = psum[b, alive].astype(np.float64) * scales[b]
            current_max = scores.max()
            threshold = current_max - alpha * config.radius

            if threshold <= scores.min():
                # clock-gated clipping: nothing can be pruned this round
                survivors[b].append(int(alive.size))
                continue

            keep_mask = scores >= threshold
            if keep_mask.sum() < config.min_keys:
                order = np.argsort(scores)[::-1]
                keep_mask = np.zeros_like(keep_mask)
                keep_mask[order[: config.min_keys]] = True
            alive = alive[keep_mask]
            alive_mask[b] = False
            alive_mask[b, alive] = True
            survivors[b].append(int(alive.size))
            if alive.size <= config.min_keys:
                early[b] = True
                done[b] = True

    return [
        BGPPResult(
            selected=np.flatnonzero(alive_mask[b]).astype(np.int64),
            estimated_scores=psum[b, : lengths[b]].astype(np.float64) * scales[b],
            survivors_per_round=survivors[b],
            kv_bits_loaded=int(kv_bits[b]),
            mac_ops=int(mac_ops[b]),
            rounds_executed=len(survivors[b]),
            early_terminated=bool(early[b]),
        )
        for b in range(n_queries)
    ]


def value_topk_select(
    query: np.ndarray,
    keys: np.ndarray,
    k: int,
    prediction_bits: int = 4,
    key_bits: int = 8,
) -> TopKResult:
    """Value-level top-k prediction baseline (paper Fig. 3 / Fig. 5e).

    The predictor loads the ``prediction_bits`` most significant bits of every
    key, computes the full estimated attention row and keeps the ``k`` largest
    entries.  Memory traffic therefore scales with *all* keys regardless of
    how trivial they are.
    """
    query = np.asarray(query)
    keys = np.asarray(keys)
    n_keys, d = keys.shape
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, n_keys)

    shift = key_bits - prediction_bits
    reduced_keys = (keys.astype(np.int64) >> shift) << shift if shift > 0 else keys
    reduced_q = _reduced_precision_query(query, prediction_bits, full_bits=key_bits)
    scores = reduced_keys @ reduced_q
    order = np.argsort(scores)[::-1]
    selected = np.sort(order[:k])
    return TopKResult(
        selected=selected,
        estimated_scores=scores.astype(np.float64),
        kv_bits_loaded=int(n_keys * d * prediction_bits),
        mac_ops=int(n_keys * d),
    )


def exact_topk(query: np.ndarray, keys: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` keys with the largest exact integer dot products."""
    query = np.asarray(query, dtype=np.int64)
    keys = np.asarray(keys, dtype=np.int64)
    scores = keys @ query
    k = min(max(k, 1), keys.shape[0])
    order = np.argsort(scores)[::-1]
    return np.sort(order[:k])


def selection_recall(selected: np.ndarray, reference: np.ndarray) -> float:
    """Fraction of ``reference`` indices contained in ``selected``."""
    reference = np.asarray(reference)
    if reference.size == 0:
        return 1.0
    selected_set = set(np.asarray(selected).tolist())
    hits = sum(1 for idx in reference.tolist() if idx in selected_set)
    return hits / reference.size


def make_bgpp_predictor(
    alpha: float | Sequence[float] = 0.55,
    rounds: int = 3,
    radius: float = 3.0,
    key_bits: int = 8,
    query_bits: int = 4,
    score_std_target: float = 0.8,
):
    """Build a key-predictor callable for :class:`repro.model.MultiHeadAttention`.

    The attention module hands the predictor float Q/K rows; the predictor
    quantises them on the fly (symmetric INT8, the same tensors the BGPP unit
    would receive from the quantiser) and returns the indices of the keys the
    progressive filter keeps.

    ``score_std_target`` normalises the integer partial sums so that the
    expected score standard deviation maps to this many softmax-logit units
    before the radius threshold (Eq. 1) is applied.  This keeps the pruning
    aggressiveness consistent across models whose raw attention-logit ranges
    differ (trained LLMs have wide, peaked logits; the synthetic models here
    have narrow ones).

    The returned callable also carries a ``select_ragged(queries, keys,
    lengths)`` attribute: the batched form the attention modules use to run
    every query row of a causal prefill through one shared filter pass (row
    ``i`` selects among ``keys[:lengths[i]]``), bit-exact against calling the
    predictor row by row.
    """

    def predictor(query: np.ndarray, keys: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.float64)
        keys = np.asarray(keys, dtype=np.float64)
        if keys.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        d = query.shape[0]
        q_scale = max(np.abs(query).max(), 1e-12) / 127.0
        k_scale = max(np.abs(keys).max(), 1e-12) / 127.0
        q_int = np.clip(np.round(query / q_scale), -127, 127).astype(np.int64)
        k_int = np.clip(np.round(keys / k_scale), -127, 127).astype(np.int64)
        # Estimated std of the integer dot products: ||q|| * mean ||k|| / sqrt(d).
        q_norm = float(np.linalg.norm(q_int))
        k_norm = float(np.mean(np.linalg.norm(k_int, axis=1)))
        score_std = max(q_norm * k_norm / np.sqrt(d), 1e-9)
        score_scale = score_std_target / score_std
        config = BGPPConfig(
            rounds=rounds,
            radius=radius,
            alpha=alpha,
            key_bits=key_bits,
            query_bits=query_bits,
            score_scale=score_scale,
        )
        return bgpp_select(q_int, k_int, config).selected

    def select_ragged(
        queries: np.ndarray, keys: np.ndarray, lengths: Sequence[int]
    ) -> List[np.ndarray]:
        """Ragged-batch selection: row ``i`` filters ``keys[:lengths[i]]``.

        Reproduces the per-row quantisation exactly -- the key scale of row
        ``i`` is the running maximum of ``|keys|`` over its prefix -- and
        groups rows that share a key scale so each group pays one plane build
        and one :func:`bgpp_select_batch` call.  The returned indices are
        bit-identical to ``predictor(queries[i], keys[:lengths[i]])``.
        """
        queries = np.asarray(queries, dtype=np.float64)
        keys = np.asarray(keys, dtype=np.float64)
        lengths = np.asarray(lengths, dtype=np.int64)
        n_rows = queries.shape[0]
        out: List[np.ndarray] = [np.zeros(0, dtype=np.int64) for _ in range(n_rows)]
        nonempty = np.flatnonzero(lengths > 0)
        if nonempty.size == 0:
            return out
        d = queries.shape[1]
        q_scales = np.maximum(np.abs(queries).max(axis=1), 1e-12) / 127.0
        q_int = np.clip(np.round(queries / q_scales[:, None]), -127, 127).astype(np.int64)
        # the single-row path norms a 1-D vector; keep that exact op per row
        q_norms = np.array([float(np.linalg.norm(q_int[i])) for i in range(n_rows)])
        key_cummax = np.maximum.accumulate(np.abs(keys).max(axis=1))
        k_scales = np.zeros(n_rows)
        k_scales[nonempty] = np.maximum(key_cummax[lengths[nonempty] - 1], 1e-12) / 127.0
        for scale in np.unique(k_scales[nonempty]):
            rows = np.flatnonzero((lengths > 0) & (k_scales == scale))
            max_len = int(lengths[rows].max())
            k_int = np.clip(np.round(keys[:max_len] / scale), -127, 127).astype(np.int64)
            key_norms = np.linalg.norm(k_int, axis=1)
            score_scales = []
            for i in rows:
                k_norm = float(np.mean(key_norms[: lengths[i]]))
                score_std = max(q_norms[i] * k_norm / np.sqrt(d), 1e-9)
                score_scales.append(score_std_target / score_std)
            config = BGPPConfig(
                rounds=rounds,
                radius=radius,
                alpha=alpha,
                key_bits=key_bits,
                query_bits=query_bits,
            )
            results = bgpp_select_batch(
                q_int[rows],
                k_int,
                config,
                key_lengths=lengths[rows],
                score_scales=score_scales,
            )
            for i, result in zip(rows, results):
                out[int(i)] = result.selected
        return out

    predictor.select_ragged = select_ragged
    return predictor


def make_value_topk_predictor(keep_fraction: float = 0.3, prediction_bits: int = 4):
    """Build a value-level top-k key predictor (the conventional baseline).

    Like :func:`make_bgpp_predictor`, the callable carries a
    ``select_ragged`` attribute running a whole ragged query batch as one
    masked score matmul plus per-row top-k, bit-exact against row-by-row
    calls.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")

    def predictor(query: np.ndarray, keys: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.float64)
        keys = np.asarray(keys, dtype=np.float64)
        if keys.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        q_scale = max(np.abs(query).max(), 1e-12) / 127.0
        k_scale = max(np.abs(keys).max(), 1e-12) / 127.0
        q_int = np.clip(np.round(query / q_scale), -127, 127).astype(np.int64)
        k_int = np.clip(np.round(keys / k_scale), -127, 127).astype(np.int64)
        k = max(1, int(round(keep_fraction * keys.shape[0])))
        return value_topk_select(q_int, k_int, k, prediction_bits=prediction_bits).selected

    def select_ragged(
        queries: np.ndarray, keys: np.ndarray, lengths: Sequence[int]
    ) -> List[np.ndarray]:
        """Ragged-batch top-k: one estimated-score matmul per key-scale group."""
        queries = np.asarray(queries, dtype=np.float64)
        keys = np.asarray(keys, dtype=np.float64)
        lengths = np.asarray(lengths, dtype=np.int64)
        n_rows = queries.shape[0]
        out: List[np.ndarray] = [np.zeros(0, dtype=np.int64) for _ in range(n_rows)]
        nonempty = np.flatnonzero(lengths > 0)
        if nonempty.size == 0:
            return out
        q_scales = np.maximum(np.abs(queries).max(axis=1), 1e-12) / 127.0
        q_int = np.clip(np.round(queries / q_scales[:, None]), -127, 127).astype(np.int64)
        reduced_q = _reduced_precision_query(q_int, prediction_bits, full_bits=8)
        key_cummax = np.maximum.accumulate(np.abs(keys).max(axis=1))
        k_scales = np.zeros(n_rows)
        k_scales[nonempty] = np.maximum(key_cummax[lengths[nonempty] - 1], 1e-12) / 127.0
        shift = 8 - prediction_bits
        for scale in np.unique(k_scales[nonempty]):
            rows = np.flatnonzero((lengths > 0) & (k_scales == scale))
            max_len = int(lengths[rows].max())
            k_int = np.clip(np.round(keys[:max_len] / scale), -127, 127).astype(np.int64)
            reduced_keys = (k_int >> shift) << shift if shift > 0 else k_int
            scores = reduced_keys @ reduced_q[rows].T  # (max_len, n_rows_in_group)
            for j, i in enumerate(rows):
                length = int(lengths[i])
                k = min(max(1, int(round(keep_fraction * length))), length)
                order = np.argsort(scores[:length, j])[::-1]
                out[int(i)] = np.sort(order[:k])
        return out

    predictor.select_ragged = select_ragged
    return predictor


def attention_sparsity(results: Sequence[BGPPResult], n_keys: int) -> float:
    """Average fraction of keys *pruned* by BGPP over a batch of query rows."""
    if not results or n_keys == 0:
        return 0.0
    kept = np.mean([r.selected.size / n_keys for r in results])
    return float(1.0 - kept)
