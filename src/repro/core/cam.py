"""Functional model of the CAM-based fast-match unit (paper §4.3, Fig. 14).

The BRCR hardware needs to find, for every possible ``m``-bit search key, the
set of weight columns whose group code equals that key.  MCBP does this with a
small content-addressable memory split into a high-order and a low-order bank
(2 bits each for ``m = 4``); a search reads one row from each bank and ANDs
the two bitmaps, producing the match bitmap in a single cycle.

This module reproduces that behaviour functionally and counts the cycles and
search events the hardware would spend, including the clock-gating of the
all-zero key (search key ``0`` is never issued, paper Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

import numpy as np

from .brcr import column_codes

__all__ = ["CAMStats", "CAMMatchUnit"]


@dataclass
class CAMStats:
    """Activity counters of one CAM match pass."""

    searches: int = 0
    gated_searches: int = 0
    matched_columns: int = 0
    load_cycles: int = 0

    @property
    def search_cycles(self) -> int:
        """One cycle per issued (non-gated) search key."""
        return self.searches

    @property
    def total_cycles(self) -> int:
        return self.load_cycles + self.search_cycles


class CAMMatchUnit:
    """Content-addressable match over the columns of one group matrix.

    Parameters
    ----------
    group_size:
        The paper's ``m``.  The CAM is built from 2-bit basic blocks, so the
        unit models ``ceil(m / 2)`` banks that are ANDed together on a search.
    capacity:
        Number of columns the CAM can hold at once (the paper uses a 512 B CAM
        holding 64 columns per PE); longer group matrices are processed in
        windows of this size.
    """

    def __init__(self, group_size: int = 4, capacity: int = 64) -> None:
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.group_size = group_size
        self.capacity = capacity
        self.n_banks = (group_size + 1) // 2
        self._codes: np.ndarray = np.zeros(0, dtype=np.int64)
        self.stats = CAMStats()

    # -- loading ------------------------------------------------------------

    def load_group(self, group_matrix: np.ndarray) -> None:
        """Orchestrate the columns of an ``m x H`` binary group matrix into the CAM."""
        group_matrix = np.asarray(group_matrix)
        if group_matrix.ndim != 2 or group_matrix.shape[0] != self.group_size:
            raise ValueError(
                f"expected a {self.group_size} x H group matrix, got shape "
                f"{group_matrix.shape}"
            )
        self._codes = column_codes(group_matrix)
        # one cycle per window of `capacity` columns to fill the CAM banks
        self.stats.load_cycles += int(np.ceil(self._codes.size / self.capacity))

    # -- searching ----------------------------------------------------------

    def search(self, key: int) -> np.ndarray:
        """Return the match bitmap (bool array over columns) for one search key."""
        n_keys = 1 << self.group_size
        if not 0 <= key < n_keys:
            raise ValueError(f"search key {key} out of range for m={self.group_size}")
        if key == 0:
            # all-zero key is clock-gated: those columns contribute nothing
            self.stats.gated_searches += 1
            return np.zeros(self._codes.shape, dtype=bool)
        self.stats.searches += 1
        bitmap = self._codes == key
        self.stats.matched_columns += int(bitmap.sum())
        return bitmap

    def enumerate_matches(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Iterate over all non-zero search keys, yielding ``(key, match bitmap)``.

        Keys with no matching column are still searched (the controller
        enumerates all ``2**m - 1`` keys, paper Fig. 14) but yield an empty
        bitmap.
        """
        for key in range(1 << self.group_size):
            bitmap = self.search(key)
            if key == 0:
                continue
            yield key, bitmap

    def match_table(self) -> Dict[int, np.ndarray]:
        """Return ``{key: column indices}`` for every key present in the loaded group."""
        table: Dict[int, np.ndarray] = {}
        for key, bitmap in self.enumerate_matches():
            idx = np.flatnonzero(bitmap)
            if idx.size:
                table[key] = idx
        return table

    def reset_stats(self) -> None:
        self.stats = CAMStats()
