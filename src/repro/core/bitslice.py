"""Bit-slice decomposition of integer tensors.

MCBP operates on *bit-slice* (BS) matrices: an INT-quantised ``k``-bit tensor
is decomposed into ``k`` binary tensors, one per bit position, such that the
original tensor can be reconstructed exactly by a weighted sum of the slices
(a shift-and-accumulate, see paper Fig. 4a).

Two binary representations are supported:

* ``"twos_complement"`` -- the natural representation of signed integers;
  the most significant slice carries weight ``-2**(k-1)``.
* ``"sign_magnitude"`` -- the representation MCBP uses for weights (paper
  §3.2), because the magnitude planes of near-Gaussian weights are extremely
  sparse in the high-order bits.  Slice ``k-1`` is the sign bit and the
  remaining slices encode ``|w|``.

All functions are pure and operate on NumPy integer arrays of any shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

__all__ = [
    "BitSliceTensor",
    "to_bitslices",
    "from_bitslices",
    "slice_sparsity",
    "value_sparsity",
    "mean_bit_sparsity",
    "sign_magnitude_split",
    "sign_magnitude_combine",
    "int_range",
]

_FORMATS = ("twos_complement", "sign_magnitude")


def int_range(bits: int) -> tuple[int, int]:
    """Return the inclusive ``(lo, hi)`` range of a signed ``bits``-bit integer."""
    if bits < 2:
        raise ValueError(f"bits must be >= 2, got {bits}")
    return -(1 << (bits - 1)), (1 << (bits - 1)) - 1


def _check_range(values: np.ndarray, bits: int, fmt: str) -> None:
    lo, hi = int_range(bits)
    if fmt == "sign_magnitude":
        # sign-magnitude cannot represent -2**(k-1); symmetric range only.
        lo = -hi
    vmin = int(values.min()) if values.size else 0
    vmax = int(values.max()) if values.size else 0
    if vmin < lo or vmax > hi:
        raise ValueError(
            f"values outside representable range [{lo}, {hi}] for "
            f"{bits}-bit {fmt}: observed [{vmin}, {vmax}]"
        )


def sign_magnitude_split(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split integers into a sign plane (1 for negative) and magnitude."""
    values = np.asarray(values)
    sign = (values < 0).astype(np.uint8)
    magnitude = np.abs(values).astype(np.int64)
    return sign, magnitude


def sign_magnitude_combine(sign: np.ndarray, magnitude: np.ndarray) -> np.ndarray:
    """Inverse of :func:`sign_magnitude_split`."""
    sign = np.asarray(sign)
    magnitude = np.asarray(magnitude, dtype=np.int64)
    return np.where(sign.astype(bool), -magnitude, magnitude)


def to_bitslices(
    values: np.ndarray,
    bits: int = 8,
    fmt: str = "sign_magnitude",
    validate: bool = True,
) -> List[np.ndarray]:
    """Decompose an integer array into ``bits`` binary slices.

    The returned list is ordered LSB first: ``slices[i]`` carries weight
    ``2**i`` (for two's complement the final slice carries ``-2**(bits-1)``;
    for sign-magnitude it is the sign plane).

    Parameters
    ----------
    values:
        Signed integer array.
    bits:
        Total bit width, including the sign bit.
    fmt:
        ``"sign_magnitude"`` (default, used for MCBP weights) or
        ``"twos_complement"``.
    validate:
        If true, raise when a value is not representable.
    """
    if fmt not in _FORMATS:
        raise ValueError(f"unknown format {fmt!r}; expected one of {_FORMATS}")
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError(f"expected an integer array, got dtype {values.dtype}")
    if validate:
        _check_range(values, bits, fmt)

    slices: List[np.ndarray] = []
    if fmt == "twos_complement":
        # Interpreting as unsigned bit pattern of the two's complement word.
        pattern = np.asarray(values, dtype=np.int64) & ((1 << bits) - 1)
        for i in range(bits):
            slices.append(((pattern >> i) & 1).astype(np.uint8))
    else:
        sign, magnitude = sign_magnitude_split(values)
        for i in range(bits - 1):
            slices.append(((magnitude >> i) & 1).astype(np.uint8))
        slices.append(sign)
    return slices


def from_bitslices(
    slices: Sequence[np.ndarray],
    fmt: str = "sign_magnitude",
) -> np.ndarray:
    """Reassemble integer values from binary slices (inverse of :func:`to_bitslices`)."""
    if fmt not in _FORMATS:
        raise ValueError(f"unknown format {fmt!r}; expected one of {_FORMATS}")
    if not slices:
        raise ValueError("need at least one bit slice")
    bits = len(slices)
    arrays = [np.asarray(s, dtype=np.int64) for s in slices]
    if fmt == "twos_complement":
        total = np.zeros_like(arrays[0])
        for i in range(bits - 1):
            total = total + (arrays[i] << i)
        total = total - (arrays[bits - 1] << (bits - 1))
        return total
    magnitude = np.zeros_like(arrays[0])
    for i in range(bits - 1):
        magnitude = magnitude + (arrays[i] << i)
    return sign_magnitude_combine(arrays[bits - 1], magnitude)


def slice_sparsity(slices: Iterable[np.ndarray]) -> List[float]:
    """Fraction of zero bits in each slice (LSB first)."""
    out: List[float] = []
    for s in slices:
        s = np.asarray(s)
        out.append(1.0 - (float(np.count_nonzero(s)) / s.size if s.size else 0.0))
    return out


def value_sparsity(values: np.ndarray) -> float:
    """Fraction of exactly-zero elements in a value-level tensor."""
    values = np.asarray(values)
    if values.size == 0:
        return 0.0
    return 1.0 - float(np.count_nonzero(values)) / values.size


def mean_bit_sparsity(
    values: np.ndarray,
    bits: int = 8,
    fmt: str = "sign_magnitude",
    include_sign: bool = False,
) -> float:
    """Average zero-bit fraction over the bit-slice matrices of ``values``.

    Follows the paper's definition (§2.3, "Illustration for the bit sparsity"):
    compute the sparsity of each bit-slice matrix and average over bit
    positions.  By default the sign plane is excluded (the paper reports the
    1st..7th magnitude slices for INT8 weights, e.g. Fig. 25).
    """
    slices = to_bitslices(values, bits=bits, fmt=fmt)
    per_plane = slice_sparsity(slices)
    if fmt == "sign_magnitude" and not include_sign:
        per_plane = per_plane[:-1]
    if not per_plane:
        return 0.0
    return float(np.mean(per_plane))


@dataclass
class BitSliceTensor:
    """An integer tensor together with its bit-slice decomposition.

    Attributes
    ----------
    values:
        The original signed integer tensor.
    bits:
        Bit width including sign.
    fmt:
        Binary representation of the slices.
    slices:
        ``bits`` binary arrays, LSB first (see :func:`to_bitslices`).
    """

    values: np.ndarray
    bits: int
    fmt: str
    slices: List[np.ndarray]

    @classmethod
    def from_values(
        cls, values: np.ndarray, bits: int = 8, fmt: str = "sign_magnitude"
    ) -> "BitSliceTensor":
        values = np.asarray(values)
        return cls(
            values=values,
            bits=bits,
            fmt=fmt,
            slices=to_bitslices(values, bits=bits, fmt=fmt),
        )

    @property
    def shape(self) -> tuple:
        return tuple(self.values.shape)

    @property
    def magnitude_slices(self) -> List[np.ndarray]:
        """Slices excluding the sign plane (sign-magnitude only)."""
        if self.fmt != "sign_magnitude":
            raise ValueError("magnitude_slices is only defined for sign-magnitude")
        return self.slices[:-1]

    @property
    def sign_plane(self) -> np.ndarray:
        if self.fmt != "sign_magnitude":
            raise ValueError("sign_plane is only defined for sign-magnitude")
        return self.slices[-1]

    def reconstruct(self) -> np.ndarray:
        """Recombine the slices; equals :attr:`values` for valid inputs."""
        return from_bitslices(self.slices, fmt=self.fmt)

    def plane_sparsity(self) -> List[float]:
        """Per-plane zero fraction, LSB first."""
        return slice_sparsity(self.slices)

    def mean_bit_sparsity(self, include_sign: bool = False) -> float:
        per_plane = self.plane_sparsity()
        if self.fmt == "sign_magnitude" and not include_sign:
            per_plane = per_plane[:-1]
        return float(np.mean(per_plane)) if per_plane else 0.0

    def value_sparsity(self) -> float:
        return value_sparsity(self.values)
