"""BS-Sparsity-enabled Two-State Coding (BSTC, paper §3.2).

BSTC is a lossless compression scheme for bit-slice weight planes.  Weights
are stored in sign-magnitude format; the high-order magnitude planes of
near-Gaussian LLM weights are extremely sparse, so each plane is encoded
independently.  The code operates on ``m``-bit column vectors (the same group
granularity as BRCR):

* an all-zero column is encoded as a single ``0`` bit;
* a non-zero column is encoded as ``1`` followed by its ``m`` raw bits.

Only planes whose sparsity exceeds a threshold (paper: 65 %, in practice the
3rd..7th magnitude planes of INT8 weights) are compressed; the remaining
planes are stored raw, because the 1-bit indicator would otherwise inflate
them.

The module provides exact encode/decode, a measured and an analytical
compression-ratio model (paper Fig. 8b), and a codec object that applies the
per-plane policy to a whole weight matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .bitslice import BitSliceTensor, to_bitslices

__all__ = [
    "EncodedPlane",
    "EncodedWeight",
    "BSTCConfig",
    "BSTCCodec",
    "encode_plane",
    "decode_plane",
    "plane_compression_ratio",
    "analytic_compression_ratio",
    "column_zero_probability",
    "default_plane_policy",
]


@dataclass
class BSTCConfig:
    """Configuration of the two-state codec.

    Attributes
    ----------
    group_size:
        Column height ``m`` (bits per coded symbol); matches BRCR's group size.
    bits:
        Weight bit width including sign.
    sparsity_threshold:
        Minimum plane sparsity for the plane to be compressed (paper: 0.65).
    """

    group_size: int = 4
    bits: int = 8
    sparsity_threshold: float = 0.65

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ValueError("group_size must be >= 1")
        if not 0.0 <= self.sparsity_threshold <= 1.0:
            raise ValueError("sparsity_threshold must be in [0, 1]")


@dataclass
class EncodedPlane:
    """One encoded bit plane.

    ``payload`` is a flat bit array (uint8 of 0/1).  ``compressed`` records
    whether the two-state code was applied or the plane was stored raw.
    ``shape`` is the original plane shape and ``group_size`` the column height
    used for encoding, needed to undo zero padding of the row dimension.
    """

    payload: np.ndarray
    compressed: bool
    shape: Tuple[int, int]
    group_size: int
    plane_index: int = 0

    @property
    def encoded_bits(self) -> int:
        return int(self.payload.size)

    @property
    def raw_bits(self) -> int:
        return int(self.shape[0] * self.shape[1])

    @property
    def compression_ratio(self) -> float:
        if self.encoded_bits == 0:
            return float("inf")
        return self.raw_bits / self.encoded_bits


@dataclass
class EncodedWeight:
    """A full weight matrix encoded plane-by-plane (magnitude planes + sign plane)."""

    planes: List[EncodedPlane]
    bits: int
    shape: Tuple[int, int]
    group_size: int

    @property
    def encoded_bits(self) -> int:
        return sum(p.encoded_bits for p in self.planes)

    @property
    def raw_bits(self) -> int:
        return int(self.shape[0] * self.shape[1] * self.bits)

    @property
    def compression_ratio(self) -> float:
        if self.encoded_bits == 0:
            return float("inf")
        return self.raw_bits / self.encoded_bits

    @property
    def compressed_plane_indices(self) -> List[int]:
        return [p.plane_index for p in self.planes if p.compressed]


def _pad_rows(plane: np.ndarray, group_size: int) -> np.ndarray:
    rows = plane.shape[0]
    pad = (-rows) % group_size
    if pad == 0:
        return plane
    return np.vstack([plane, np.zeros((pad, plane.shape[1]), dtype=plane.dtype)])


def encode_plane(
    plane: np.ndarray, group_size: int = 4, compress: bool = True, plane_index: int = 0
) -> EncodedPlane:
    """Encode one binary plane with the two-state code.

    The plane's rows are processed ``group_size`` at a time; every ``m``-bit
    column of each row block becomes one symbol.  With ``compress=False`` the
    raw bits are stored unchanged (used for low-sparsity planes).
    """
    plane = np.asarray(plane, dtype=np.uint8)
    if plane.ndim != 2:
        raise ValueError(f"plane must be 2-D, got shape {plane.shape}")
    shape = (int(plane.shape[0]), int(plane.shape[1]))
    if not compress:
        return EncodedPlane(
            payload=plane.reshape(-1).copy(),
            compressed=False,
            shape=shape,
            group_size=group_size,
            plane_index=plane_index,
        )

    # Vectorised two-state coding: every m-bit column becomes one symbol of
    # 1 bit (all-zero) or m+1 bits (indicator + raw column), laid out in the
    # same group-major scan order the sequential encoder used.
    padded = _pad_rows(plane, group_size)
    m = group_size
    n_groups = padded.shape[0] // m
    symbols = padded.reshape(n_groups, m, shape[1]).transpose(0, 2, 1).reshape(-1, m)
    nonzero = symbols.any(axis=1)
    lengths = np.where(nonzero, m + 1, 1)
    offsets = np.concatenate(([0], np.cumsum(lengths)))
    payload = np.zeros(int(offsets[-1]), dtype=np.uint8)
    nz_starts = offsets[:-1][nonzero]
    payload[nz_starts] = 1
    if nz_starts.size:
        data_pos = nz_starts[:, None] + 1 + np.arange(m)[None, :]
        payload[data_pos.reshape(-1)] = symbols[nonzero].reshape(-1)
    return EncodedPlane(
        payload=payload,
        compressed=True,
        shape=shape,
        group_size=group_size,
        plane_index=plane_index,
    )


def decode_plane(encoded: EncodedPlane) -> np.ndarray:
    """Decode an :class:`EncodedPlane` back to its exact binary plane."""
    rows, cols = encoded.shape
    if not encoded.compressed:
        return encoded.payload.reshape(rows, cols).astype(np.uint8)

    m = encoded.group_size
    padded_rows = rows + ((-rows) % m)
    plane = np.zeros((padded_rows, cols), dtype=np.uint8)
    payload = encoded.payload
    pos = 0
    for start in range(0, padded_rows, m):
        for c in range(cols):
            if pos >= payload.size:
                raise ValueError("truncated BSTC payload")
            indicator = payload[pos]
            pos += 1
            if indicator:
                column = payload[pos : pos + m]
                if column.size < m:
                    raise ValueError("truncated BSTC payload")
                plane[start : start + m, c] = column
                pos += m
    if pos != payload.size:
        raise ValueError(
            f"BSTC payload has {payload.size - pos} trailing bits after decoding"
        )
    return plane[:rows]


def plane_compression_ratio(plane: np.ndarray, group_size: int = 4) -> float:
    """Measured compression ratio of applying the two-state code to ``plane``."""
    encoded = encode_plane(plane, group_size=group_size, compress=True)
    return plane.size / encoded.encoded_bits if encoded.encoded_bits else float("inf")


def column_zero_probability(sparsity: float, group_size: int) -> float:
    """Probability that an ``m``-bit column is all zero under i.i.d. bit sparsity."""
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError("sparsity must be in [0, 1]")
    return float(sparsity) ** group_size


def analytic_compression_ratio(sparsity: float, group_size: int) -> float:
    """Analytical compression ratio of BSTC (paper Fig. 8b).

    With i.i.d. bit sparsity ``sr`` an ``m``-bit column is all-zero with
    probability ``sr**m`` and costs 1 bit, otherwise ``m + 1`` bits; the raw
    cost is ``m`` bits, so ``CR = m / (sr**m + (1 - sr**m) * (m + 1))``.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    p0 = column_zero_probability(sparsity, group_size)
    expected_bits = p0 * 1.0 + (1.0 - p0) * (group_size + 1.0)
    return group_size / expected_bits


def default_plane_policy(
    plane_sparsity: Sequence[float], threshold: float = 0.65
) -> List[bool]:
    """Decide which planes to compress given their measured sparsity.

    Returns one flag per plane (LSB first, sign plane last), true when the
    plane's zero fraction meets the threshold.  For Gaussian INT8 weights this
    reproduces the paper's choice of compressing magnitude planes 3-7 while
    leaving planes 1, 2 and the sign plane raw.
    """
    return [s >= threshold for s in plane_sparsity]


class BSTCCodec:
    """Plane-policy codec over whole sign-magnitude weight matrices.

    The codec counts its ``encode_calls`` / ``decode_calls`` so callers that
    cache decoded planes (e.g. :class:`repro.core.engine.MCBPEngine`) can
    assert that steady-state execution performs no redundant decodes.
    """

    def __init__(self, config: Optional[BSTCConfig] = None) -> None:
        self.config = config or BSTCConfig()
        self.encode_calls = 0
        self.decode_calls = 0

    def reset_counters(self) -> None:
        self.encode_calls = 0
        self.decode_calls = 0

    def encode(self, weights: np.ndarray) -> EncodedWeight:
        """Encode a signed integer weight matrix into per-plane BSTC streams."""
        self.encode_calls += 1
        weights = np.asarray(weights)
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
        tensor = BitSliceTensor.from_values(
            weights, bits=self.config.bits, fmt="sign_magnitude"
        )
        sparsity = tensor.plane_sparsity()
        policy = default_plane_policy(sparsity, self.config.sparsity_threshold)
        # never compress the sign plane: its sparsity tracks the sign balance,
        # not magnitude sparsity, and the paper stores it raw.
        policy[-1] = False
        planes = [
            encode_plane(
                plane,
                group_size=self.config.group_size,
                compress=policy[i],
                plane_index=i,
            )
            for i, plane in enumerate(tensor.slices)
        ]
        return EncodedWeight(
            planes=planes,
            bits=self.config.bits,
            shape=(int(weights.shape[0]), int(weights.shape[1])),
            group_size=self.config.group_size,
        )

    def decode(self, encoded: EncodedWeight) -> np.ndarray:
        """Decode back to the exact signed integer weight matrix."""
        self.decode_calls += 1
        slices = [decode_plane(p) for p in encoded.planes]
        from .bitslice import from_bitslices

        return from_bitslices(slices, fmt="sign_magnitude")

    def compression_report(self, weights: np.ndarray) -> Dict[str, object]:
        """Summarise per-plane sparsity, policy and compression for ``weights``."""
        weights = np.asarray(weights)
        tensor = BitSliceTensor.from_values(
            weights, bits=self.config.bits, fmt="sign_magnitude"
        )
        encoded = self.encode(weights)
        return {
            "plane_sparsity": tensor.plane_sparsity(),
            "compressed_planes": encoded.compressed_plane_indices,
            "raw_bits": encoded.raw_bits,
            "encoded_bits": encoded.encoded_bits,
            "compression_ratio": encoded.compression_ratio,
        }
