"""BS-Repetitiveness-enabled Computation Reduction (BRCR, paper §3.1).

BRCR accelerates integer GEMV/GEMM by exploiting repeated column vectors
inside *group matrices*: ``m`` rows of one bit-slice plane of the weight
matrix.  Because an ``m``-row binary matrix has at most ``2**m`` distinct
column vectors while LLM hidden dimensions are in the thousands, columns
repeat massively (pigeonhole argument, paper Fig. 5a).

The algorithm has two steps (paper Fig. 7):

1. *Merging repetitive operations* -- every activation is accumulated into a
   slot of the Merged Activation Vector (MAV) selected by the ``m``-bit code
   of its weight column.  Zero columns (code 0) are skipped entirely, so this
   step costs at most ``H * (1 - bit_sparsity)`` additions.
2. *Computation reconstruction* -- the group's ``m`` outputs are rebuilt by
   multiplying the fixed enumeration matrix with the MAV, which costs at most
   ``m * 2**(m-1)`` additions.

This module provides an exact functional implementation (bit-identical to a
dense integer GEMM) plus an operation-count cost model matching the paper's
complexity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .bitslice import to_bitslices

__all__ = [
    "BRCRCost",
    "BRCRConfig",
    "column_codes",
    "enumeration_matrix",
    "merge_activations",
    "reconstruct_outputs",
    "brcr_group_gemv",
    "brcr_plane_gemv",
    "brcr_plane_gemv_reference",
    "brcr_gemv",
    "brcr_gemm",
    "brcr_additions",
    "bit_serial_additions",
    "value_sparse_additions",
    "dense_additions",
    "unique_column_fraction",
    "group_merge_reduction",
]


@dataclass
class BRCRCost:
    """Addition counts accumulated while executing BRCR.

    ``merge_additions`` counts the accumulations into the MAV (step 1) and
    ``reconstruction_additions`` the enumeration-matrix additions (step 2).
    ``columns_processed`` / ``columns_skipped`` track how many weight columns
    carried at least one non-zero bit versus were skipped as all-zero.
    """

    merge_additions: int = 0
    reconstruction_additions: int = 0
    columns_processed: int = 0
    columns_skipped: int = 0
    groups: int = 0
    planes: int = 0

    @property
    def total_additions(self) -> int:
        return self.merge_additions + self.reconstruction_additions

    def __iadd__(self, other: "BRCRCost") -> "BRCRCost":
        self.merge_additions += other.merge_additions
        self.reconstruction_additions += other.reconstruction_additions
        self.columns_processed += other.columns_processed
        self.columns_skipped += other.columns_skipped
        self.groups += other.groups
        self.planes += other.planes
        return self

    def __add__(self, other: "BRCRCost") -> "BRCRCost":
        out = BRCRCost()
        out += self
        out += other
        return out


@dataclass
class BRCRConfig:
    """Configuration of the BRCR transform.

    Attributes
    ----------
    group_size:
        Number of weight rows merged per group (paper's ``m``; default 4).
    bits:
        Weight bit width including sign.
    fmt:
        Bit-slice representation of weights (``"sign_magnitude"`` in MCBP).
    """

    group_size: int = 4
    bits: int = 8
    fmt: str = "sign_magnitude"

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {self.group_size}")
        if self.bits < 2:
            raise ValueError(f"bits must be >= 2, got {self.bits}")


def column_codes(group_matrix: np.ndarray) -> np.ndarray:
    """Encode every column of an ``m x H`` binary matrix as an integer in ``[0, 2**m)``.

    Row 0 is the least significant bit of the code, matching the paper's
    "grouped index" (Fig. 7b).
    """
    group_matrix = np.asarray(group_matrix)
    if group_matrix.ndim != 2:
        raise ValueError(f"expected a 2-D group matrix, got shape {group_matrix.shape}")
    m = group_matrix.shape[0]
    if m > 62:
        raise ValueError(f"group size {m} too large to encode as int64 codes")
    weights = (1 << np.arange(m, dtype=np.int64))
    return (group_matrix.astype(np.int64).T @ weights).astype(np.int64)


def enumeration_matrix(group_size: int) -> np.ndarray:
    """Return the ``group_size x 2**group_size`` enumeration matrix ``E``.

    Column ``j`` holds the binary expansion of ``j`` (row 0 = LSB), so
    ``E[:, code]`` reproduces the original weight column with that code.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    codes = np.arange(1 << group_size, dtype=np.int64)
    rows = [((codes >> i) & 1).astype(np.int64) for i in range(group_size)]
    return np.stack(rows, axis=0)


def merge_activations(
    codes: np.ndarray,
    activations: np.ndarray,
    group_size: int,
) -> Tuple[np.ndarray, BRCRCost]:
    """Step 1 of BRCR: accumulate activations into the MAV by column code.

    Parameters
    ----------
    codes:
        Integer code of every weight column (length ``H``).
    activations:
        Activation vector (length ``H``) or matrix (``H x N``) -- the latter
        merges every activation column at once (GEMM case).
    group_size:
        The paper's ``m``; the MAV has ``2**m`` slots.

    Returns
    -------
    (mav, cost):
        ``mav`` has shape ``(2**m,)`` or ``(2**m, N)``.  Additions are counted
        as in the paper: the first activation falling into a slot is a move,
        every further one is an addition, and code-0 (all-zero) columns are
        skipped entirely.
    """
    codes = np.asarray(codes, dtype=np.int64)
    activations = np.asarray(activations)
    if activations.shape[0] != codes.shape[0]:
        raise ValueError(
            f"activations first dim {activations.shape[0]} does not match "
            f"number of codes {codes.shape[0]}"
        )
    n_slots = 1 << group_size
    if codes.size and (codes.min() < 0 or codes.max() >= n_slots):
        raise ValueError("column codes out of range for the given group size")

    vector_input = activations.ndim == 1
    acts = activations.reshape(codes.shape[0], -1).astype(np.int64)
    n_cols_out = acts.shape[1]

    nonzero_mask = codes != 0
    nz_codes = codes[nonzero_mask]
    mav = np.zeros((n_slots, n_cols_out), dtype=np.int64)
    np.add.at(mav, nz_codes, acts[nonzero_mask])

    slot_counts = np.bincount(nz_codes, minlength=n_slots)
    touched_slots = int(np.count_nonzero(slot_counts))
    merges = int(nz_codes.size - touched_slots)

    cost = BRCRCost(
        merge_additions=merges * n_cols_out,
        columns_processed=int(nz_codes.size),
        columns_skipped=int(codes.size - nz_codes.size),
        groups=1,
    )
    if vector_input:
        return mav[:, 0], cost
    return mav, cost


def reconstruct_outputs(
    mav: np.ndarray,
    group_size: int,
) -> Tuple[np.ndarray, BRCRCost]:
    """Step 2 of BRCR: rebuild the ``m`` group outputs from the MAV.

    Output row ``i`` sums every MAV slot whose code has bit ``i`` set, i.e.
    ``Y = E @ Z``.  Cost is counted as (number of contributing slots - 1)
    additions per output row, bounded by ``m * 2**(m-1)``.
    """
    mav = np.asarray(mav, dtype=np.int64)
    n_slots = 1 << group_size
    if mav.shape[0] != n_slots:
        raise ValueError(
            f"MAV length {mav.shape[0]} does not match 2**group_size = {n_slots}"
        )
    enum = enumeration_matrix(group_size)
    outputs = enum @ mav

    # Count additions only over slots that actually hold a non-zero partial
    # sum; an idle adder input costs nothing in the cost model.
    if mav.ndim == 1:
        active = mav != 0
    else:
        active = np.any(mav != 0, axis=1)
    per_row_active = enum[:, active].sum(axis=1)
    additions = int(np.maximum(per_row_active - 1, 0).sum())
    n_cols_out = 1 if mav.ndim == 1 else mav.shape[1]
    cost = BRCRCost(reconstruction_additions=additions * n_cols_out)
    return outputs, cost


def brcr_group_gemv(
    group_matrix: np.ndarray,
    activations: np.ndarray,
) -> Tuple[np.ndarray, BRCRCost]:
    """Exact GEMV of one binary group matrix (``m x H``) with activations.

    Equivalent to ``group_matrix @ activations`` but executed via the
    merge + reconstruct path so that the returned cost reflects BRCR.
    """
    group_matrix = np.asarray(group_matrix)
    m = group_matrix.shape[0]
    codes = column_codes(group_matrix)
    mav, merge_cost = merge_activations(codes, activations, m)
    outputs, recon_cost = reconstruct_outputs(mav, m)
    return outputs, merge_cost + recon_cost


def _split_signed_planes(
    weights: np.ndarray, bits: int, fmt: str
) -> List[Tuple[int, np.ndarray]]:
    """Decompose signed weights into (shift-weight, binary plane) pairs.

    For sign-magnitude weights each magnitude plane is split into a positive
    and a negative binary sub-plane so that every plane stays binary (matching
    the hardware's sign-decision unit) while the weighted sum of plane GEMVs
    remains exactly the integer GEMV.
    """
    weights = np.asarray(weights)
    planes: List[Tuple[int, np.ndarray]] = []
    if fmt == "twos_complement":
        slices = to_bitslices(weights, bits=bits, fmt="twos_complement")
        for i, plane in enumerate(slices):
            weight = -(1 << i) if i == bits - 1 else (1 << i)
            planes.append((weight, plane.astype(np.uint8)))
        return planes

    slices = to_bitslices(weights, bits=bits, fmt="sign_magnitude")
    sign = slices[-1].astype(bool)
    for i, plane in enumerate(slices[:-1]):
        plane = plane.astype(np.uint8)
        pos = np.where(~sign, plane, 0).astype(np.uint8)
        neg = np.where(sign, plane, 0).astype(np.uint8)
        if pos.any():
            planes.append(((1 << i), pos))
        if neg.any():
            planes.append((-(1 << i), neg))
        if not pos.any() and not neg.any():
            # keep an explicit empty plane so that plane counting is stable
            planes.append(((1 << i), pos))
    return planes


def brcr_plane_gemv_reference(
    plane: np.ndarray,
    activations: np.ndarray,
    group_size: int,
) -> Tuple[np.ndarray, BRCRCost]:
    """Reference plane GEMV: one :func:`brcr_group_gemv` call per row group.

    Kept as the semantic specification of :func:`brcr_plane_gemv`; the
    property suite asserts the vectorised path reproduces both the outputs
    and the cost counters of this loop exactly.
    """
    plane = np.asarray(plane)
    if plane.ndim != 2:
        raise ValueError(f"plane must be 2-D, got shape {plane.shape}")
    rows, _ = plane.shape
    acts = np.asarray(activations)
    out_shape = (rows,) if acts.ndim == 1 else (rows, acts.shape[1])
    outputs = np.zeros(out_shape, dtype=np.int64)
    total = BRCRCost(planes=1)
    for start in range(0, rows, group_size):
        stop = min(start + group_size, rows)
        group = plane[start:stop]
        group_out, cost = brcr_group_gemv(group, acts)
        outputs[start:stop] = group_out[: stop - start]
        total += cost
    return outputs, total


# Working-set bounds of the vectorised plane GEMV (elements, i.e. 8 bytes
# each): the gathered scatter-add operand and the all-groups MAV respectively.
_GATHER_BUDGET_ELEMS = 1 << 22
_MAV_BUDGET_ELEMS = 1 << 24


def brcr_plane_gemv(
    plane: np.ndarray,
    activations: np.ndarray,
    group_size: int,
) -> Tuple[np.ndarray, BRCRCost]:
    """Exact GEMV of one binary plane (``R x H``) using groups of ``group_size`` rows.

    Vectorised implementation: the plane is zero-padded to a whole number of
    groups and all group merges run through a single scatter-add, so the cost
    of the Python-level group loop is amortised away.  Outputs and cost
    counters are bit-identical to :func:`brcr_plane_gemv_reference` (padding
    rows are all-zero, so they change neither the column codes, the touched
    MAV slots, nor the reconstruction additions of real rows).
    """
    plane = np.asarray(plane)
    if plane.ndim != 2:
        raise ValueError(f"plane must be 2-D, got shape {plane.shape}")
    if group_size > 62:
        raise ValueError(f"group size {group_size} too large to encode as int64 codes")
    rows, hidden = plane.shape
    acts = np.asarray(activations)
    if acts.shape[0] != hidden:
        raise ValueError(
            f"activations first dim {acts.shape[0]} does not match plane width {hidden}"
        )
    vector_input = acts.ndim == 1
    acts2 = acts.reshape(hidden, -1).astype(np.int64)
    n_cols = acts2.shape[1]

    m = group_size
    pad = (-rows) % m
    padded = (
        np.vstack([plane, np.zeros((pad, hidden), dtype=plane.dtype)]) if pad else plane
    )
    n_groups = padded.shape[0] // m
    n_slots = 1 << m

    # Bound the MAV working set: with a large group_size (2**m slots) and many
    # groups the all-groups-at-once MAV can dwarf the reference path's
    # one-group transient, so fall back to processing blocks of whole groups.
    # Splitting on group boundaries leaves outputs and every cost counter
    # unchanged (only the final block is ever padded).
    if n_groups > 1 and n_groups * n_slots * n_cols > _MAV_BUDGET_ELEMS:
        groups_per_block = max(1, _MAV_BUDGET_ELEMS // (n_slots * n_cols))
        rows_per_block = groups_per_block * m
        total = BRCRCost()
        outputs_blocks = []
        for start in range(0, rows, rows_per_block):
            block_out, block_cost = brcr_plane_gemv(
                plane[start : start + rows_per_block], activations, m
            )
            outputs_blocks.append(block_out)
            total += block_cost
        total.planes = 1  # one plane regardless of how many blocks it took
        return np.concatenate(outputs_blocks, axis=0), total

    # Column codes of every group at once: (G, H) with row 0 of a group = LSB.
    # Accumulating plane rows one bit position at a time in the narrowest
    # sufficient dtype avoids materialising an int64 copy of the whole plane.
    code_dtype = np.int16 if m <= 14 else (np.int32 if m <= 30 else np.int64)
    grouped = padded.reshape(n_groups, m, hidden)
    codes = np.zeros((n_groups, hidden), dtype=code_dtype)
    for i in range(m):
        codes += grouped[:, i, :].astype(code_dtype) << i

    codes_flat = codes.ravel()
    nz_flat = np.flatnonzero(codes_flat)
    nz_g = nz_flat // hidden
    nz_h = nz_flat - nz_g * hidden
    flat_idx = nz_g * n_slots + codes_flat[nz_flat].astype(np.int64)
    mav = np.zeros((n_groups * n_slots, n_cols), dtype=np.int64)
    # The gathered operand of the scatter-add is an (nnz, n_cols) temporary;
    # chunk over activation columns so GEMM-shaped calls stay within a bounded
    # working set instead of materialising the whole thing at once.
    if nz_flat.size * n_cols > _GATHER_BUDGET_ELEMS and n_cols > 1:
        block = max(1, _GATHER_BUDGET_ELEMS // max(1, nz_flat.size))
        for start_col in range(0, n_cols, block):
            stop_col = min(start_col + block, n_cols)
            np.add.at(
                mav[:, start_col:stop_col], flat_idx, acts2[nz_h, start_col:stop_col]
            )
    else:
        np.add.at(mav, flat_idx, acts2[nz_h])

    touched_slots = int(np.count_nonzero(np.bincount(flat_idx, minlength=n_groups * n_slots)))
    merges = int(nz_flat.size - touched_slots)

    mav3 = mav.reshape(n_groups, n_slots, n_cols)
    enum = enumeration_matrix(m)
    outputs = np.einsum("ms,gsn->gmn", enum, mav3)
    active = np.any(mav3 != 0, axis=2)
    per_row_active = active.astype(np.int64) @ enum.T  # (G, m)
    recon_adds = int(np.maximum(per_row_active - 1, 0).sum())

    outputs = outputs.reshape(n_groups * m, n_cols)[:rows]
    cost = BRCRCost(
        merge_additions=merges * n_cols,
        reconstruction_additions=recon_adds * n_cols,
        columns_processed=int(nz_g.size),
        columns_skipped=int(codes.size - nz_g.size),
        groups=int(n_groups),
        planes=1,
    )
    if vector_input:
        return outputs[:, 0], cost
    return outputs, cost


def brcr_gemv(
    weights: np.ndarray,
    activations: np.ndarray,
    config: Optional[BRCRConfig] = None,
) -> Tuple[np.ndarray, BRCRCost]:
    """Exact integer GEMV ``weights @ activations`` executed with BRCR.

    ``weights`` is an ``(M, H)`` signed integer matrix, ``activations`` a
    length-``H`` integer vector (or ``(H, N)`` matrix for GEMM-style use).
    The result is bit-identical to ``weights.astype(int64) @ activations``.
    """
    config = config or BRCRConfig()
    weights = np.asarray(weights)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
    acts = np.asarray(activations).astype(np.int64)
    out_shape = (
        (weights.shape[0],) if acts.ndim == 1 else (weights.shape[0], acts.shape[1])
    )
    outputs = np.zeros(out_shape, dtype=np.int64)
    total = BRCRCost()
    for shift_weight, plane in _split_signed_planes(weights, config.bits, config.fmt):
        plane_out, cost = brcr_plane_gemv(plane, acts, config.group_size)
        outputs = outputs + shift_weight * plane_out
        total += cost
    return outputs, total


def brcr_gemm(
    weights: np.ndarray,
    activations: np.ndarray,
    config: Optional[BRCRConfig] = None,
) -> Tuple[np.ndarray, BRCRCost]:
    """Exact integer GEMM ``weights @ activations`` with BRCR (alias of :func:`brcr_gemv`)."""
    return brcr_gemv(weights, activations, config=config)


# ---------------------------------------------------------------------------
# Analytical cost model (paper §3.1 complexity summary)
# ---------------------------------------------------------------------------


def brcr_additions(
    hidden: int,
    bits: int,
    group_size: int,
    bit_sparsity: float,
    rows: Optional[int] = None,
) -> float:
    """Analytical addition count of BRCR for a ``rows x hidden`` ``bits``-bit GEMV.

    Paper formula: ``k * (H*(1-bs) + m*2**(m-1))`` per group of ``m`` rows;
    scaled by the number of groups when ``rows`` is given.
    """
    per_group = hidden * (1.0 - bit_sparsity) + group_size * (1 << (group_size - 1))
    n_groups = 1 if rows is None else max(1, int(np.ceil(rows / group_size)))
    return bits * per_group * n_groups


def bit_serial_additions(
    hidden: int,
    bits: int,
    group_size: int,
    bit_sparsity: float,
    rows: Optional[int] = None,
) -> float:
    """Sparsity-aware bit-serial computing baseline: ``k * H * m * (1-bs)`` per group."""
    per_group = hidden * group_size * (1.0 - bit_sparsity)
    n_groups = 1 if rows is None else max(1, int(np.ceil(rows / group_size)))
    return bits * per_group * n_groups


def value_sparse_additions(
    hidden: int,
    bits: int,
    group_size: int,
    value_sparsity: float,
    rows: Optional[int] = None,
) -> float:
    """Value-sparsity baseline: ``H * m * k * (1 - vs)`` additions per group.

    The paper writes ``H*m*k*vs`` with ``vs`` denoting density; here ``value_sparsity``
    is the zero fraction, so density is ``1 - value_sparsity``.
    """
    per_group = hidden * group_size * bits * (1.0 - value_sparsity)
    n_groups = 1 if rows is None else max(1, int(np.ceil(rows / group_size)))
    return per_group * n_groups


def dense_additions(hidden: int, rows: int, bits: int = 1) -> float:
    """Dense value-level MAC count (one addition per weight element per bit of serialisation)."""
    return float(hidden) * rows * bits


# ---------------------------------------------------------------------------
# Repetition statistics (Fig. 5a/5b)
# ---------------------------------------------------------------------------


def unique_column_fraction(plane: np.ndarray, group_size: Optional[int] = None) -> float:
    """Average fraction of *distinct* column vectors per group of ``group_size`` rows.

    ``group_size=None`` treats the whole plane as a single group (the paper's
    "vanilla full-size merge").  Lower values mean more exploitable repetition.
    """
    plane = np.asarray(plane)
    if plane.ndim != 2:
        raise ValueError("plane must be 2-D")
    rows, cols = plane.shape
    if cols == 0:
        return 0.0
    if group_size is None:
        group_size = rows
    fractions = []
    for start in range(0, rows, group_size):
        group = plane[start : start + group_size]
        # use bytes of each column as a hashable key
        unique = np.unique(group.T, axis=0).shape[0]
        fractions.append(unique / cols)
    return float(np.mean(fractions)) if fractions else 0.0


def _merge_cost_for_group(group: np.ndarray) -> int:
    """Measured addition count of merging + reconstructing one binary group.

    Merging costs one addition for every non-zero column beyond the first one
    mapped to each distinct column pattern; reconstruction costs ``popcount``
    additions for adding each distinct non-zero pattern into its output rows.
    """
    group = np.asarray(group)
    cols = group.T
    nonzero_mask = cols.any(axis=1)
    nz_cols = cols[nonzero_mask]
    if nz_cols.shape[0] == 0:
        return 0
    unique_cols, counts = np.unique(nz_cols, axis=0, return_counts=True)
    merge = int((counts - 1).sum())
    reconstruction = int(unique_cols.sum())
    return merge + reconstruction


def group_merge_reduction(
    weights: np.ndarray,
    group_size: int,
    bits: int = 8,
) -> Tuple[float, float]:
    """Computation-reduction factors of full-size vs group-wise merging (Fig. 5b).

    Both schemes are normalised against dense bit-serial computation, which
    spends one addition per weight bit position (``(bits-1) * rows * H``
    additions for the magnitude planes).

    * The *vanilla full-size merge* can only skip a column when the entire
      ``rows``-high bit column is duplicated elsewhere, which almost never
      happens for LLM-sized matrices, so its reduction stays near 1.
    * The *group-wise merge* (BRCR) partitions every plane into groups of
      ``group_size`` rows, skips all-zero group columns and merges repeated
      ones, which is where the paper's ~5x advantage comes from.

    Returns ``(full_size_reduction, group_wise_reduction)``.
    """
    weights = np.asarray(weights)
    rows, hidden = weights.shape
    tensor_planes = to_bitslices(weights, bits=bits, fmt="sign_magnitude")[:-1]
    dense_ops = float(len(tensor_planes) * rows * hidden)

    cost_full = 0.0
    cost_group = 0.0
    for plane in tensor_planes:
        # Full-size merge: one addition per row of every *distinct* full-height
        # column (duplicates reuse the already-computed contribution).
        unique_full = np.unique(plane.T, axis=0).shape[0]
        cost_full += float(rows * unique_full)
        for start in range(0, rows, group_size):
            cost_group += _merge_cost_for_group(plane[start : start + group_size])

    full_reduction = dense_ops / cost_full if cost_full else float("inf")
    group_reduction = dense_ops / cost_group if cost_group else float("inf")
    return full_reduction, group_reduction
