"""Functional MCBP engine: BSTC-compressed weights executed through BRCR,
with BGPP-driven sparse attention (paper Fig. 6 execution flow).

This ties the three algorithm components together the way the accelerator
does:

1. weights are compressed offline with BSTC and held in encoded form;
2. at execution time each layer's planes are decoded and the integer GEMM is
   carried out by BRCR (bit-exact against a dense integer GEMM);
3. attention key selection runs through the BGPP progressive filter.

Serving-oriented additions on top of the seed engine:

* a **decoded-plane LRU cache** amortises BSTC decode cost across calls --
  a steady-state decode loop pays one decode per layer, after which every
  GEMM is a cache hit and fetches no compressed weight stream;
* :meth:`MCBPEngine.select_keys` accepts a ``(B, d)`` query batch and runs
  the whole decode step's attention prediction in one NumPy pass.

The engine also accumulates the operation and traffic counters that the
hardware cost models consume, so that an end-to-end functional run and the
analytical model can be cross-checked on small configurations.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .bgpp import BGPPConfig, BGPPResult, bgpp_select, bgpp_select_batch
from .brcr import BRCRConfig, BRCRCost, brcr_gemm
from .bstc import BSTCCodec, BSTCConfig, EncodedWeight

__all__ = ["EngineStats", "MCBPLayer", "MCBPEngine"]


@dataclass
class EngineStats:
    """Counters accumulated across engine calls.

    ``weight_bits`` records the weight precision the engine executes at; the
    dense bit-serial baseline spends one addition per weight bit per MAC, so
    :attr:`compute_reduction` derives its numerator from it instead of
    assuming INT8.
    """

    weight_bits: int = 8
    gemm_calls: int = 0
    dense_macs: int = 0
    brcr_additions: int = 0
    weight_bits_raw: int = 0
    weight_bits_compressed: int = 0
    kv_bits_loaded: int = 0
    kv_bits_dense: int = 0
    keys_selected: int = 0
    keys_total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def compute_reduction(self) -> float:
        """Dense bit-serial additions (``weight_bits`` per MAC) over BRCR additions."""
        if self.brcr_additions == 0:
            return float("inf") if self.dense_macs else 1.0
        return (self.dense_macs * float(self.weight_bits)) / self.brcr_additions

    @property
    def weight_compression_ratio(self) -> float:
        if self.weight_bits_compressed == 0:
            return float("inf") if self.weight_bits_raw else 1.0
        return self.weight_bits_raw / self.weight_bits_compressed

    @property
    def kv_traffic_fraction(self) -> float:
        if self.kv_bits_dense == 0:
            return 1.0
        return self.kv_bits_loaded / self.kv_bits_dense

    @property
    def attention_keep_fraction(self) -> float:
        if self.keys_total == 0:
            return 1.0
        return self.keys_selected / self.keys_total

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0


@dataclass
class MCBPLayer:
    """One BSTC-compressed integer weight matrix ready for BRCR execution."""

    encoded: EncodedWeight
    weight_shape: Tuple[int, int]
    name: str = "layer"

    @property
    def raw_bits(self) -> int:
        return self.encoded.raw_bits

    @property
    def compressed_bits(self) -> int:
        return self.encoded.encoded_bits


class MCBPEngine:
    """Executes integer GEMMs and sparse attention the MCBP way.

    Parameters
    ----------
    group_size:
        BRCR/BSTC group granularity ``m`` (paper default 4).
    weight_bits:
        Bit width of the integer weights.
    bgpp_config:
        Progressive-prediction parameters used by :meth:`select_keys`.
    plane_cache_entries:
        Capacity of the decoded-plane LRU cache (number of layers whose
        decoded weights are kept resident).  ``0`` disables caching and
        restores the seed behaviour of decoding on every GEMM.
    """

    def __init__(
        self,
        group_size: int = 4,
        weight_bits: int = 8,
        bgpp_config: Optional[BGPPConfig] = None,
        plane_cache_entries: int = 64,
    ) -> None:
        if plane_cache_entries < 0:
            raise ValueError(
                f"plane_cache_entries must be >= 0, got {plane_cache_entries}"
            )
        self.brcr_config = BRCRConfig(group_size=group_size, bits=weight_bits)
        self.codec = BSTCCodec(BSTCConfig(group_size=group_size, bits=weight_bits))
        self.bgpp_config = bgpp_config or BGPPConfig()
        self.plane_cache_entries = plane_cache_entries
        self.stats = EngineStats(weight_bits=weight_bits)
        self._layers: Dict[str, MCBPLayer] = {}
        self._plane_cache: "OrderedDict[str, np.ndarray]" = OrderedDict()
        # float64 views of cached decoded planes for matmul()'s BLAS product
        self._plane_cache_f64: Dict[str, np.ndarray] = {}

    @property
    def weight_bits(self) -> int:
        """Weight precision; single source of truth is the BRCR config."""
        return self.brcr_config.bits

    # -- weight management ----------------------------------------------------

    def register_weight(self, name: str, weight_q: np.ndarray) -> MCBPLayer:
        """Offline step: BSTC-compress an integer weight matrix and store it."""
        weight_q = np.asarray(weight_q)
        encoded = self.codec.encode(weight_q)
        layer = MCBPLayer(
            encoded=encoded,
            weight_shape=(int(weight_q.shape[0]), int(weight_q.shape[1])),
            name=name,
        )
        self._layers[name] = layer
        self._plane_cache.pop(name, None)  # re-registering invalidates the cache
        self._plane_cache_f64.pop(name, None)
        return layer

    def layer_names(self) -> List[str]:
        return sorted(self._layers)

    # -- decoded-plane cache ---------------------------------------------------

    def _decoded_weight(self, name: str) -> np.ndarray:
        """Decoded integer weights of a layer, served from the LRU cache.

        A hit serves the decoded planes from on-chip storage: no compressed
        stream is fetched and no decode runs, so neither the weight-traffic
        counters nor the codec's ``decode_calls`` move.  A miss decodes once,
        counts the compressed fetch, and (capacity permitting) caches the
        result, evicting the least recently used layer.
        """
        layer = self._layers[name]
        cached = self._plane_cache.get(name)
        if cached is not None:
            self._plane_cache.move_to_end(name)
            self.stats.cache_hits += 1
            return cached
        self.stats.cache_misses += 1
        self.stats.weight_bits_raw += layer.raw_bits
        self.stats.weight_bits_compressed += layer.compressed_bits
        weight_q = self.codec.decode(layer.encoded)
        if self.plane_cache_entries > 0:
            self._plane_cache[name] = weight_q
            while len(self._plane_cache) > self.plane_cache_entries:
                evicted, _ = self._plane_cache.popitem(last=False)
                self._plane_cache_f64.pop(evicted, None)
        return weight_q

    def cache_contents(self) -> List[str]:
        """Layer names currently resident in the decoded-plane cache (LRU first)."""
        return list(self._plane_cache)

    def clear_plane_cache(self) -> None:
        self._plane_cache.clear()
        self._plane_cache_f64.clear()

    # -- execution -------------------------------------------------------------

    def gemm(self, name: str, activations_q: np.ndarray) -> np.ndarray:
        """Integer GEMM of a registered layer against quantised activations.

        ``activations_q`` may be a single vector ``(H,)`` or a batch ``(H, N)``;
        the result is exactly ``W_q @ X_q`` either way.  The layer's BSTC
        planes are decoded (and their compressed traffic counted) only on a
        plane-cache miss.
        """
        if name not in self._layers:
            raise KeyError(f"layer {name!r} was never registered")
        layer = self._layers[name]
        weight_q = self._decoded_weight(name)
        outputs, cost = brcr_gemm(weight_q, activations_q, config=self.brcr_config)

        acts = np.asarray(activations_q)
        n_cols = 1 if acts.ndim == 1 else acts.shape[1]
        self.stats.gemm_calls += 1
        self.stats.dense_macs += layer.weight_shape[0] * layer.weight_shape[1] * n_cols
        self.stats.brcr_additions += cost.total_additions
        return outputs

    def matmul(self, name: str, activations_q: np.ndarray) -> np.ndarray:
        """Serving fast path: cached decoded planes + one NumPy integer matmul.

        Bit-identical to :meth:`gemm` (the BRCR bit-serial path is pinned
        exact against the dense product by the property suite) but skips the
        bit-serial emulation, so one scheduler step over a ``(H, B)`` batch
        pays at most one BSTC decode per layer (on a plane-cache miss) plus a
        single ``(M, K) @ (K, B)`` product for the whole active batch.
        ``gemm_calls``/``dense_macs`` and the cache/weight-traffic counters
        accumulate as usual; ``brcr_additions`` does not move because no
        bit-serial execution ran.
        """
        if name not in self._layers:
            raise KeyError(f"layer {name!r} was never registered")
        layer = self._layers[name]
        weight_q = self._decoded_weight(name)
        acts = np.asarray(activations_q, dtype=np.int64)
        # BLAS float64 product: every partial sum is an integer bounded by
        # K * max|W| * max|X|, exact in float64 as long as it stays below
        # 2**53; fall back to the integer loops for pathological magnitudes.
        bound = (
            weight_q.shape[1]
            * float(1 << max(self.weight_bits - 1, 1))
            * float(np.abs(acts).max() if acts.size else 0)
        )
        if bound < 2**53:
            weight_f = self._plane_cache_f64.get(name)
            if weight_f is None:
                weight_f = weight_q.astype(np.float64)
                if name in self._plane_cache:
                    self._plane_cache_f64[name] = weight_f
            outputs = (weight_f @ acts.astype(np.float64)).astype(np.int64)
        else:
            outputs = weight_q.astype(np.int64) @ acts
        n_cols = 1 if acts.ndim == 1 else acts.shape[1]
        self.stats.gemm_calls += 1
        self.stats.dense_macs += layer.weight_shape[0] * layer.weight_shape[1] * n_cols
        return outputs

    def select_keys(
        self, query_q: np.ndarray, keys_q: np.ndarray
    ) -> Union[BGPPResult, List[BGPPResult]]:
        """BGPP key selection with KV-traffic accounting.

        ``query_q`` may be a single row ``(d,)`` or a batch ``(B, d)``; the
        batch form runs the progressive filter for the whole decode step in
        one NumPy pass and returns one result per query row.
        """
        query_q = np.asarray(query_q)
        keys_q = np.asarray(keys_q)
        if query_q.ndim == 2:
            results = bgpp_select_batch(query_q, keys_q, self.bgpp_config)
            for result in results:
                self._account_selection(result, keys_q)
            return results
        result = bgpp_select(query_q, keys_q, self.bgpp_config)
        self._account_selection(result, keys_q)
        return result

    def select_keys_batch(
        self, queries_q: np.ndarray, keys_q: np.ndarray
    ) -> List[BGPPResult]:
        """Batched BGPP selection (explicit-name alias of the ``(B, d)`` path)."""
        return self.select_keys(np.atleast_2d(np.asarray(queries_q)), keys_q)

    def _account_selection(self, result: BGPPResult, keys_q: np.ndarray) -> None:
        self.stats.kv_bits_loaded += result.kv_bits_loaded
        self.stats.kv_bits_dense += int(keys_q.size) * self.bgpp_config.key_bits
        self.stats.keys_selected += int(result.selected.size)
        self.stats.keys_total += int(keys_q.shape[0])

    def sparse_attention_scores(
        self, query_q: np.ndarray, keys_q: np.ndarray
    ) -> Tuple[np.ndarray, Union[BGPPResult, List[BGPPResult]]]:
        """Exact integer attention scores computed only for the BGPP-selected keys.

        Unselected keys receive a score of ``-inf`` so that a downstream softmax
        assigns them zero probability (the formal-compute stage of Fig. 3).
        A ``(B, d)`` query batch returns ``(B, n_keys)`` scores and one
        :class:`BGPPResult` per row, matching :meth:`select_keys`.
        """
        keys_q = np.asarray(keys_q, dtype=np.int64)
        query_q = np.asarray(query_q)
        if query_q.ndim == 2:
            results = self.select_keys(query_q, keys_q)
            scores = np.full(
                (query_q.shape[0], keys_q.shape[0]), -np.inf, dtype=np.float64
            )
            for i, (query, result) in enumerate(zip(query_q, results)):
                if result.selected.size:
                    selected_scores = keys_q[result.selected] @ query.astype(np.int64)
                    scores[i, result.selected] = selected_scores.astype(np.float64)
            return scores, results
        result = self.select_keys(query_q, keys_q)
        scores = np.full(keys_q.shape[0], -np.inf, dtype=np.float64)
        if result.selected.size:
            selected_scores = keys_q[result.selected] @ query_q.astype(np.int64)
            scores[result.selected] = selected_scores.astype(np.float64)
        return scores, result

    def reset_stats(self, clear_plane_cache: bool = False) -> None:
        """Zero the counters; optionally also cold-start the decoded-plane cache.

        By default the cache stays warm, so a post-reset measurement window
        reports the true steady-state traffic (all hits, zero compressed
        weight fetches -- ``weight_compression_ratio`` then returns its 1.0
        no-traffic fallback).  Pass ``clear_plane_cache=True`` to measure
        cold-cache behaviour, which matches the seed engine's accounting.
        """
        self.stats = EngineStats(weight_bits=self.weight_bits)
        if clear_plane_cache:
            self.clear_plane_cache()
