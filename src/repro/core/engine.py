"""Functional MCBP engine: BSTC-compressed weights executed through BRCR,
with BGPP-driven sparse attention (paper Fig. 6 execution flow).

This ties the three algorithm components together the way the accelerator
does:

1. weights are compressed offline with BSTC and held in encoded form;
2. at execution time each layer's planes are decoded and the integer GEMM is
   carried out by BRCR (bit-exact against a dense integer GEMM);
3. attention key selection runs through the BGPP progressive filter.

The engine also accumulates the operation and traffic counters that the
hardware cost models consume, so that an end-to-end functional run and the
analytical model can be cross-checked on small configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .bgpp import BGPPConfig, BGPPResult, bgpp_select
from .brcr import BRCRConfig, BRCRCost, brcr_gemm
from .bstc import BSTCCodec, BSTCConfig, EncodedWeight

__all__ = ["EngineStats", "MCBPLayer", "MCBPEngine"]


@dataclass
class EngineStats:
    """Counters accumulated across engine calls."""

    gemm_calls: int = 0
    dense_macs: int = 0
    brcr_additions: int = 0
    weight_bits_raw: int = 0
    weight_bits_compressed: int = 0
    kv_bits_loaded: int = 0
    kv_bits_dense: int = 0
    keys_selected: int = 0
    keys_total: int = 0

    @property
    def compute_reduction(self) -> float:
        """Dense bit-serial additions (8 per MAC) over BRCR additions."""
        if self.brcr_additions == 0:
            return float("inf") if self.dense_macs else 1.0
        return (self.dense_macs * 8.0) / self.brcr_additions

    @property
    def weight_compression_ratio(self) -> float:
        if self.weight_bits_compressed == 0:
            return float("inf") if self.weight_bits_raw else 1.0
        return self.weight_bits_raw / self.weight_bits_compressed

    @property
    def kv_traffic_fraction(self) -> float:
        if self.kv_bits_dense == 0:
            return 1.0
        return self.kv_bits_loaded / self.kv_bits_dense

    @property
    def attention_keep_fraction(self) -> float:
        if self.keys_total == 0:
            return 1.0
        return self.keys_selected / self.keys_total


@dataclass
class MCBPLayer:
    """One BSTC-compressed integer weight matrix ready for BRCR execution."""

    encoded: EncodedWeight
    weight_shape: Tuple[int, int]
    name: str = "layer"

    @property
    def raw_bits(self) -> int:
        return self.encoded.raw_bits

    @property
    def compressed_bits(self) -> int:
        return self.encoded.encoded_bits


class MCBPEngine:
    """Executes integer GEMMs and sparse attention the MCBP way.

    Parameters
    ----------
    group_size:
        BRCR/BSTC group granularity ``m`` (paper default 4).
    weight_bits:
        Bit width of the integer weights.
    bgpp_config:
        Progressive-prediction parameters used by :meth:`select_keys`.
    """

    def __init__(
        self,
        group_size: int = 4,
        weight_bits: int = 8,
        bgpp_config: Optional[BGPPConfig] = None,
    ) -> None:
        self.brcr_config = BRCRConfig(group_size=group_size, bits=weight_bits)
        self.codec = BSTCCodec(BSTCConfig(group_size=group_size, bits=weight_bits))
        self.bgpp_config = bgpp_config or BGPPConfig()
        self.stats = EngineStats()
        self._layers: Dict[str, MCBPLayer] = {}

    # -- weight management ----------------------------------------------------

    def register_weight(self, name: str, weight_q: np.ndarray) -> MCBPLayer:
        """Offline step: BSTC-compress an integer weight matrix and store it."""
        weight_q = np.asarray(weight_q)
        encoded = self.codec.encode(weight_q)
        layer = MCBPLayer(
            encoded=encoded,
            weight_shape=(int(weight_q.shape[0]), int(weight_q.shape[1])),
            name=name,
        )
        self._layers[name] = layer
        return layer

    def layer_names(self) -> List[str]:
        return sorted(self._layers)

    # -- execution -------------------------------------------------------------

    def gemm(self, name: str, activations_q: np.ndarray) -> np.ndarray:
        """Integer GEMM of a registered layer against quantised activations.

        Decodes the BSTC planes (counting the compressed weight traffic) and
        runs BRCR; the result is exactly ``W_q @ X_q``.
        """
        if name not in self._layers:
            raise KeyError(f"layer {name!r} was never registered")
        layer = self._layers[name]
        weight_q = self.codec.decode(layer.encoded)
        outputs, cost = brcr_gemm(weight_q, activations_q, config=self.brcr_config)

        acts = np.asarray(activations_q)
        n_cols = 1 if acts.ndim == 1 else acts.shape[1]
        self.stats.gemm_calls += 1
        self.stats.dense_macs += layer.weight_shape[0] * layer.weight_shape[1] * n_cols
        self.stats.brcr_additions += cost.total_additions
        self.stats.weight_bits_raw += layer.raw_bits
        self.stats.weight_bits_compressed += layer.compressed_bits
        return outputs

    def select_keys(self, query_q: np.ndarray, keys_q: np.ndarray) -> BGPPResult:
        """BGPP key selection with KV-traffic accounting."""
        keys_q = np.asarray(keys_q)
        result = bgpp_select(query_q, keys_q, self.bgpp_config)
        self.stats.kv_bits_loaded += result.kv_bits_loaded
        self.stats.kv_bits_dense += int(keys_q.size) * self.bgpp_config.key_bits
        self.stats.keys_selected += int(result.selected.size)
        self.stats.keys_total += int(keys_q.shape[0])
        return result

    def sparse_attention_scores(
        self, query_q: np.ndarray, keys_q: np.ndarray
    ) -> Tuple[np.ndarray, BGPPResult]:
        """Exact integer attention scores computed only for the BGPP-selected keys.

        Unselected keys receive a score of ``-inf`` so that a downstream softmax
        assigns them zero probability (the formal-compute stage of Fig. 3).
        """
        keys_q = np.asarray(keys_q, dtype=np.int64)
        result = self.select_keys(query_q, keys_q)
        scores = np.full(keys_q.shape[0], -np.inf, dtype=np.float64)
        if result.selected.size:
            selected_scores = keys_q[result.selected] @ np.asarray(query_q, dtype=np.int64)
            scores[result.selected] = selected_scores.astype(np.float64)
        return scores, result

    def reset_stats(self) -> None:
        self.stats = EngineStats()
