"""Analytical accelerator cost framework and the MCBP accelerator model.

The paper evaluates MCBP with an RTL prototype plus CACTI/Ramulator memory
models.  Here every accelerator (MCBP and the prior-work baselines) is an
:class:`AnalyticalAccelerator`: a set of hooks describing *which* redundancy
the design can exploit (compute reduction, weight compression, KV-prediction
traffic) layered on top of a shared cycle/energy accounting core.  Because all
designs share the same accounting core and the same measured workload
profiles, relative comparisons (speedup, energy ratios, traffic reductions)
are apples-to-apples -- which is what the paper's figures report.

Latency model: compute and memory transfers are double-buffered, so each
stage's latency is ``max(compute_cycles, memory_cycles)`` plus a small
pipeline fill overhead.  Energy model: per-event energies from
:class:`repro.hw.constants.TechnologyConstants` applied to the counted
operations, SRAM traffic, DRAM traffic and (where applicable) bit-reorder and
prediction work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..model.generation import stage_gemm_macs
from ..workloads.profile import AlgorithmProfile
from ..workloads.tasks import Workload
from .constants import DEFAULT_TECH, MCBP_HW_CONFIG, MCBPHardwareConfig, TechnologyConstants

__all__ = [
    "StageCost",
    "AcceleratorReport",
    "AnalyticalAccelerator",
    "MCBPAccelerator",
    "dense_stage_quantities",
]


# ---------------------------------------------------------------------------
# Cost containers
# ---------------------------------------------------------------------------


@dataclass
class StageCost:
    """Cycles, traffic and energy of one inference stage on one processor."""

    stage: str
    effective_macs: float = 0.0
    physical_ops: float = 0.0
    weight_bytes: float = 0.0
    kv_bytes: float = 0.0
    activation_bytes: float = 0.0
    prediction_bytes: float = 0.0
    bit_reorder_bits: float = 0.0
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    compute_energy_pj: float = 0.0
    sram_energy_pj: float = 0.0
    dram_energy_pj: float = 0.0
    reorder_energy_pj: float = 0.0
    prediction_energy_pj: float = 0.0

    @property
    def dram_bytes(self) -> float:
        return (
            self.weight_bytes
            + self.kv_bytes
            + self.activation_bytes
            + self.prediction_bytes
        )

    @property
    def latency_cycles(self) -> float:
        """Double-buffered pipeline: the slower of compute and memory dominates."""
        return max(self.compute_cycles, self.memory_cycles)

    @property
    def total_energy_pj(self) -> float:
        return (
            self.compute_energy_pj
            + self.sram_energy_pj
            + self.dram_energy_pj
            + self.reorder_energy_pj
            + self.prediction_energy_pj
        )

    def energy_breakdown(self) -> Dict[str, float]:
        return {
            "compute": self.compute_energy_pj,
            "sram": self.sram_energy_pj,
            "dram": self.dram_energy_pj,
            "bit_reorder": self.reorder_energy_pj,
            "prediction": self.prediction_energy_pj,
        }


@dataclass
class AcceleratorReport:
    """End-to-end result of evaluating one workload on one accelerator."""

    accelerator: str
    workload: Workload
    prefill: StageCost
    decode: StageCost
    n_processors: int = 1
    frequency_hz: float = DEFAULT_TECH.frequency_hz
    idle_power_w: float = 0.0

    @property
    def total_latency_cycles(self) -> float:
        return (self.prefill.latency_cycles + self.decode.latency_cycles) / self.n_processors

    @property
    def total_latency_s(self) -> float:
        return self.total_latency_cycles / self.frequency_hz

    @property
    def prefill_latency_s(self) -> float:
        return self.prefill.latency_cycles / self.n_processors / self.frequency_hz

    @property
    def decode_latency_s(self) -> float:
        return self.decode.latency_cycles / self.n_processors / self.frequency_hz

    @property
    def total_energy_j(self) -> float:
        dynamic = (self.prefill.total_energy_pj + self.decode.total_energy_pj) * 1e-12
        static = self.idle_power_w * self.n_processors * self.total_latency_s
        return dynamic + static

    @property
    def effective_ops(self) -> float:
        """Dense INT8-equivalent operations represented (2 ops per MAC)."""
        return 2.0 * (self.prefill.effective_macs + self.decode.effective_macs)

    @property
    def throughput_gops(self) -> float:
        if self.total_latency_s <= 0:
            return 0.0
        return self.effective_ops / self.total_latency_s / 1e9

    @property
    def energy_efficiency_gops_per_w(self) -> float:
        """Effective GOPS per watt, i.e. effective giga-operations per joule."""
        if self.total_energy_j <= 0:
            return 0.0
        return (self.effective_ops / 1e9) / self.total_energy_j

    @property
    def average_power_w(self) -> float:
        if self.total_latency_s <= 0:
            return 0.0
        return self.total_energy_j / self.total_latency_s

    @property
    def total_dram_bytes(self) -> float:
        return self.prefill.dram_bytes + self.decode.dram_bytes


# ---------------------------------------------------------------------------
# Dense workload quantities
# ---------------------------------------------------------------------------


def dense_stage_quantities(workload: Workload) -> Dict[str, float]:
    """Dense (un-optimised) per-stage MACs and DRAM traffic for a workload.

    Weight traffic assumptions: the prefill stage streams the full weight set
    once (activations for the whole prompt are batched against each tile);
    every decoding step re-streams the full weights (they exceed on-chip SRAM
    for all evaluated models) but the stream is shared across the batch.  KV
    traffic: prefill writes the prompt's KV tensors once; every decoding step
    reads the entire cache accumulated so far plus writes one new entry.
    """
    model = workload.model
    macs = stage_gemm_macs(
        model, workload.prompt_len, workload.decode_len, batch=workload.batch
    )
    weight_bytes = float(model.weight_bytes(bits=8))

    prefill_kv_write = float(model.kv_cache_bytes(workload.prompt_len, workload.batch))
    avg_context = workload.prompt_len + workload.decode_len / 2.0
    decode_kv_read = float(
        workload.decode_len * model.kv_cache_bytes(int(avg_context), workload.batch)
    )
    decode_kv_write = float(model.kv_cache_bytes(workload.decode_len, workload.batch))

    act_bytes_prefill = float(
        2 * workload.prompt_len * model.hidden_size * model.n_layers * workload.batch
    )
    act_bytes_decode = float(
        2 * workload.decode_len * model.hidden_size * model.n_layers * workload.batch
    )

    return {
        "prefill_linear_macs": macs["prefill_linear_macs"],
        "prefill_attention_macs": macs["prefill_attention_macs"],
        "decode_linear_macs": macs["decode_linear_macs"],
        "decode_attention_macs": macs["decode_attention_macs"],
        "prefill_weight_bytes": weight_bytes,
        "decode_weight_bytes": weight_bytes * workload.decode_len,
        "prefill_kv_bytes": prefill_kv_write,
        "decode_kv_bytes": decode_kv_read + decode_kv_write,
        "prefill_act_bytes": act_bytes_prefill,
        "decode_act_bytes": act_bytes_decode,
    }


# ---------------------------------------------------------------------------
# Base analytical accelerator
# ---------------------------------------------------------------------------


class AnalyticalAccelerator:
    """Dense INT8 accelerator; subclasses override the optimisation hooks.

    Attributes
    ----------
    name:
        Display name used in reports.
    peak_ops_per_cycle:
        Physical operations the datapath retires per cycle (MACs for
        value-level designs, bit-level additions for bit-serial designs).
    op_energy_pj:
        Energy per physical operation.
    utilization:
        Fraction of the peak the design sustains on these workloads.
    """

    name: str = "dense-int8"
    peak_ops_per_cycle: float = 2048.0
    op_energy_pj: float = DEFAULT_TECH.int8_mac_pj
    utilization: float = 0.75
    idle_power_w: float = 0.0
    sram_reuse_factor: float = 2.0  # on-chip bytes moved per DRAM byte
    # Override to give a design more (or less) DRAM bandwidth than the default
    # 512-bit/cycle HBM interface, e.g. the A100's 2 TB/s.
    hbm_bytes_per_cycle_override: Optional[float] = None
    dram_energy_scale: float = 1.0

    def __init__(self, tech: TechnologyConstants = DEFAULT_TECH) -> None:
        self.tech = tech

    @property
    def hbm_bytes_per_cycle(self) -> float:
        if self.hbm_bytes_per_cycle_override is not None:
            return self.hbm_bytes_per_cycle_override
        return self.tech.hbm_bytes_per_cycle

    # -- optimisation hooks (dense defaults) ---------------------------------

    def linear_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        """Physical ops per dense MAC for QKV/FFN GEMMs (1.0 = dense value-level)."""
        return 1.0

    def attention_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        """Physical ops per dense MAC for the attention GEMMs."""
        return 1.0

    def weight_traffic_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        """Multiplier on dense weight DRAM traffic."""
        return 1.0

    def kv_traffic_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        """Multiplier on dense KV DRAM traffic (formal compute portion)."""
        return 1.0

    def prediction_traffic_bytes(
        self, workload: Workload, profile: AlgorithmProfile, stage: str,
        dense_kv_bytes: float,
    ) -> float:
        """Extra DRAM traffic spent on attention-sparsity prediction."""
        return 0.0

    def bit_reorder_fraction(self, profile: AlgorithmProfile) -> float:
        """Fraction of loaded weight bits that must be re-ordered for the datapath."""
        return 0.0

    # -- shared accounting ----------------------------------------------------

    def _stage_cost(
        self,
        workload: Workload,
        profile: AlgorithmProfile,
        stage: str,
        dense: Dict[str, float],
    ) -> StageCost:
        prefix = "prefill" if stage == "prefill" else "decode"
        linear_macs = dense[f"{prefix}_linear_macs"]
        attn_macs = dense[f"{prefix}_attention_macs"]
        weight_bytes = dense[f"{prefix}_weight_bytes"]
        kv_bytes = dense[f"{prefix}_kv_bytes"]
        act_bytes = dense[f"{prefix}_act_bytes"]

        physical_ops = (
            linear_macs * self.linear_ops_factor(profile, stage)
            + attn_macs * self.attention_ops_factor(profile, stage)
        )
        weight_traffic = weight_bytes * self.weight_traffic_factor(profile, stage)
        kv_traffic = kv_bytes * self.kv_traffic_factor(profile, stage)
        prediction = self.prediction_traffic_bytes(workload, profile, stage, kv_bytes)
        reorder_bits = (
            (weight_traffic + kv_traffic) * 8.0 * self.bit_reorder_fraction(profile)
        )

        compute_cycles = physical_ops / (self.peak_ops_per_cycle * self.utilization)
        dram_bytes = weight_traffic + kv_traffic + act_bytes + prediction
        memory_cycles = dram_bytes / self.hbm_bytes_per_cycle

        dram_byte_pj = self.tech.dram_byte_pj * self.dram_energy_scale
        compute_energy = physical_ops * self.op_energy_pj
        sram_energy = dram_bytes * self.sram_reuse_factor * self.tech.sram_byte_pj
        dram_energy = (dram_bytes - prediction) * dram_byte_pj
        reorder_energy = reorder_bits * self.tech.bit_reorder_bit_pj
        prediction_energy = prediction * dram_byte_pj

        return StageCost(
            stage=stage,
            effective_macs=linear_macs + attn_macs,
            physical_ops=physical_ops,
            weight_bytes=weight_traffic,
            kv_bytes=kv_traffic,
            activation_bytes=act_bytes,
            prediction_bytes=prediction,
            bit_reorder_bits=reorder_bits,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            compute_energy_pj=compute_energy,
            sram_energy_pj=sram_energy,
            dram_energy_pj=dram_energy,
            reorder_energy_pj=reorder_energy,
            prediction_energy_pj=prediction_energy,
        )

    def evaluate(
        self,
        workload: Workload,
        profile: AlgorithmProfile,
        n_processors: int = 1,
    ) -> AcceleratorReport:
        """Evaluate one workload and return the full latency/energy report."""
        dense = dense_stage_quantities(workload)
        prefill = self._stage_cost(workload, profile, "prefill", dense)
        decode = self._stage_cost(workload, profile, "decode", dense)
        return AcceleratorReport(
            accelerator=self.name,
            workload=workload,
            prefill=prefill,
            decode=decode,
            n_processors=n_processors,
            frequency_hz=self.tech.frequency_hz,
            idle_power_w=self.idle_power_w,
        )


# ---------------------------------------------------------------------------
# MCBP accelerator
# ---------------------------------------------------------------------------


class MCBPAccelerator(AnalyticalAccelerator):
    """The MCBP accelerator with its three optimisations individually toggleable.

    ``use_brcr`` / ``use_bstc`` / ``use_bgpp`` allow the Fig. 19 ablation
    (baseline = vanilla bit-serial compute + value-level compression +
    value-level top-k prediction).  The datapath is bit-serial: a dense INT8
    MAC costs ``weight_bits`` bit-level additions, and BRCR divides that by
    its measured merge reduction.
    """

    name = "MCBP"
    # Physical bit-level additions retired per cycle across the 20 PE clusters.
    peak_ops_per_cycle = 16384.0
    op_energy_pj = DEFAULT_TECH.int8_add_pj
    utilization = 0.78  # paper §5.3: 78 % average utilisation
    idle_power_w = 0.0
    sram_reuse_factor = 2.0

    def __init__(
        self,
        use_brcr: bool = True,
        use_bstc: bool = True,
        use_bgpp: bool = True,
        hw_config: MCBPHardwareConfig = MCBP_HW_CONFIG,
        tech: TechnologyConstants = DEFAULT_TECH,
        aggressive: bool = False,
    ) -> None:
        super().__init__(tech=tech)
        self.use_brcr = use_brcr
        self.use_bstc = use_bstc
        self.use_bgpp = use_bgpp
        self.hw_config = hw_config
        self.aggressive = aggressive
        flags = []
        if use_brcr:
            flags.append("BRCR")
        if use_bstc:
            flags.append("BSTC")
        if use_bgpp:
            flags.append("BGPP")
        if len(flags) < 3:
            self.name = "MCBP[" + "+".join(flags) + "]" if flags else "MCBP[baseline]"
        elif aggressive:
            self.name = "MCBP-aggressive"

    # -- hooks ---------------------------------------------------------------

    def _bgpp_keep(self, profile: AlgorithmProfile) -> float:
        keep = profile.bgpp_keep_fraction
        if self.aggressive:
            keep = max(0.05, keep * 0.7)
        return keep

    def linear_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        bits = profile.weight_bits
        if self.use_brcr:
            return bits / max(profile.brcr_reduction, 1e-9)
        # vanilla bit-serial baseline still skips zero bits within a vector
        return bits * (1.0 - profile.bit_sparsity)

    def attention_ops_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        bits = profile.weight_bits
        keep = self._bgpp_keep(profile) if self.use_bgpp else profile.value_topk_keep_fraction
        serial = bits / max(profile.brcr_reduction, 1e-9) if self.use_brcr else bits * (
            1.0 - profile.bit_sparsity
        )
        # prediction compute: bit-grained progressive rounds (cheap) or 4-bit
        # value-level estimate over all keys.
        if self.use_bgpp:
            prediction = 0.5 * profile.bgpp_kv_traffic_fraction
        else:
            prediction = 0.5
        return keep * serial + prediction

    def weight_traffic_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        # Dense reference traffic is expressed at INT8; lower-precision weights
        # (the INT4 study of Fig. 26) proportionally shrink the raw stream.
        precision = profile.weight_bits / 8.0
        if self.use_bstc:
            return precision / max(profile.bstc_compression_ratio, 1e-9)
        # baseline: value-level compression (Huffman-like) bounded by value sparsity
        return precision * (1.0 - 0.5 * profile.value_sparsity)

    def kv_traffic_factor(self, profile: AlgorithmProfile, stage: str) -> float:
        if stage == "prefill":
            return 1.0  # prefill KV traffic is the cache write, always performed
        keep = self._bgpp_keep(profile) if self.use_bgpp else profile.value_topk_keep_fraction
        return keep

    def prediction_traffic_bytes(
        self, workload, profile: AlgorithmProfile, stage: str, dense_kv_bytes: float
    ) -> float:
        if stage == "prefill":
            return 0.0
        # Keys are half of the KV bytes; the predictor touches only keys.
        key_bytes = dense_kv_bytes / 2.0
        if self.use_bgpp:
            return key_bytes * profile.bgpp_kv_traffic_fraction
        return key_bytes * 0.5  # value-level predictor loads the 4-bit MSBs of all keys

    def bit_reorder_fraction(self, profile: AlgorithmProfile) -> float:
        # Bit-slice-first storage keeps re-ordering negligible (paper: ~3 %).
        return 0.03 if self.use_bstc else 0.30
