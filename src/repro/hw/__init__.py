"""Hardware cost models: technology constants, area/power, accelerator framework."""

from .accelerator import (
    AcceleratorReport,
    AnalyticalAccelerator,
    MCBPAccelerator,
    StageCost,
    dense_stage_quantities,
)
from .area import (
    AREA_FRACTIONS,
    CORE_POWER_FRACTIONS,
    TOTAL_POWER_FRACTIONS,
    AreaBreakdown,
    PowerBreakdown,
    mcbp_area_breakdown,
    mcbp_power_breakdown,
)
from .constants import DEFAULT_TECH, MCBP_HW_CONFIG, MCBPHardwareConfig, TechnologyConstants
from .tiling import GemmTiling, TileConfig, plan_gemm_tiling

__all__ = [
    "TileConfig",
    "GemmTiling",
    "plan_gemm_tiling",
    "TechnologyConstants",
    "DEFAULT_TECH",
    "MCBPHardwareConfig",
    "MCBP_HW_CONFIG",
    "StageCost",
    "AcceleratorReport",
    "AnalyticalAccelerator",
    "MCBPAccelerator",
    "dense_stage_quantities",
    "AreaBreakdown",
    "PowerBreakdown",
    "mcbp_area_breakdown",
    "mcbp_power_breakdown",
    "AREA_FRACTIONS",
    "CORE_POWER_FRACTIONS",
    "TOTAL_POWER_FRACTIONS",
]
