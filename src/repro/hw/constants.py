"""Technology and energy constants for the accelerator cost models.

Values follow the paper's evaluation setup (§5.1): TSMC 28 nm at 1 GHz,
1248 kB of on-chip SRAM, HBM delivering 512 bits/cycle at 4 pJ/bit, and the
published area/power of the MCBP prototype (9.52 mm^2, 2.395 W, Table 3 /
Fig. 22).  Per-operation energies are standard 28 nm estimates (Horowitz-style
numbers) used consistently across MCBP and every baseline so that relative
comparisons are fair.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechnologyConstants", "DEFAULT_TECH", "MCBP_HW_CONFIG", "MCBPHardwareConfig"]


@dataclass(frozen=True)
class TechnologyConstants:
    """Per-event energy and bandwidth constants (28 nm, 1 GHz)."""

    frequency_hz: float = 1.0e9
    # compute energies (pJ)
    int8_mac_pj: float = 0.23
    int8_add_pj: float = 0.03
    int4_mac_pj: float = 0.08
    fp16_op_pj: float = 1.1
    shift_pj: float = 0.01
    cam_search_pj: float = 0.06
    codec_bit_pj: float = 0.002
    # memory energies
    sram_byte_pj: float = 1.2
    dram_bit_pj: float = 4.0  # paper: 4 pJ/bit for HBM
    # bandwidths
    hbm_bits_per_cycle: float = 512.0
    # bit reordering (value-layout -> bit-slice layout) energy per reordered bit
    bit_reorder_bit_pj: float = 0.01

    @property
    def hbm_bytes_per_cycle(self) -> float:
        return self.hbm_bits_per_cycle / 8.0

    @property
    def hbm_bandwidth_bytes_per_s(self) -> float:
        return self.hbm_bytes_per_cycle * self.frequency_hz

    @property
    def dram_byte_pj(self) -> float:
        return self.dram_bit_pj * 8.0


DEFAULT_TECH = TechnologyConstants()


@dataclass(frozen=True)
class MCBPHardwareConfig:
    """MCBP prototype configuration (paper Table 3)."""

    n_pe_clusters: int = 20
    pes_per_cluster: int = 8
    cam_bytes_per_pe: int = 512
    add_merge_units_per_pe: int = 16
    bstc_decoders: int = 80  # 20 x 4
    bstc_encoders: int = 40  # 10 x 4
    bgpp_adder_trees: int = 64
    bgpp_filters: int = 4
    token_sram_kb: int = 384
    weight_sram_kb: int = 768
    temp_sram_kb: int = 96
    hbm_channels: int = 8
    hbm_channel_bits: int = 128
    hbm_capacity_gb: int = 8
    group_size: int = 4
    tile_m: int = 64
    tile_k: int = 256
    tile_n: int = 32
    area_mm2: float = 9.52
    total_power_w: float = 2.395

    @property
    def n_pes(self) -> int:
        return self.n_pe_clusters * self.pes_per_cluster

    @property
    def total_sram_kb(self) -> int:
        return self.token_sram_kb + self.weight_sram_kb + self.temp_sram_kb

    @property
    def adders_per_cycle(self) -> int:
        """Peak merge additions the BRCR units can retire per cycle."""
        return self.n_pes * self.add_merge_units_per_pe


MCBP_HW_CONFIG = MCBPHardwareConfig()
