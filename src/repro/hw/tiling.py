"""GEMM tiling model of the MCBP accelerator (paper Fig. 12 and §4.1).

MCBP uses an output-stationary dataflow with tiles ``TM x TK`` (weights) and
``TK x TN`` (activations); the weight tile is held in the 768 kB weight SRAM
and re-used against every activation tile, and the 8 PEs of a cluster process
the bit slices of the weight tile in parallel.  This module computes tile
counts, on-chip residency and the DRAM re-fetch factors that the cost model's
``sram_reuse_factor`` abstracts, so the tiling choices can be examined and
ablated directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict

from .constants import MCBP_HW_CONFIG, MCBPHardwareConfig

__all__ = ["TileConfig", "GemmTiling", "plan_gemm_tiling"]


@dataclass(frozen=True)
class TileConfig:
    """Tile sizes of the output-stationary dataflow (paper: 64 / 256 / 32)."""

    tile_m: int = MCBP_HW_CONFIG.tile_m
    tile_k: int = MCBP_HW_CONFIG.tile_k
    tile_n: int = MCBP_HW_CONFIG.tile_n

    def __post_init__(self) -> None:
        if min(self.tile_m, self.tile_k, self.tile_n) < 1:
            raise ValueError("tile sizes must be positive")


@dataclass
class GemmTiling:
    """Tile counts and traffic factors for one ``M x K`` by ``K x N`` GEMM."""

    m: int
    k: int
    n: int
    config: TileConfig

    @property
    def tiles_m(self) -> int:
        return ceil(self.m / self.config.tile_m)

    @property
    def tiles_k(self) -> int:
        return ceil(self.k / self.config.tile_k)

    @property
    def tiles_n(self) -> int:
        return ceil(self.n / self.config.tile_n)

    @property
    def total_tiles(self) -> int:
        return self.tiles_m * self.tiles_k * self.tiles_n

    def weight_tile_bytes(self, bits: int = 8) -> int:
        """Size of one weight tile in bytes at the given precision."""
        return self.config.tile_m * self.config.tile_k * bits // 8

    def weight_tile_fits(self, hw: MCBPHardwareConfig = MCBP_HW_CONFIG, bits: int = 8) -> bool:
        """Whether a double-buffered weight tile fits the weight SRAM."""
        return 2 * self.weight_tile_bytes(bits) <= hw.weight_sram_kb * 1024

    def weight_dram_fetches(self) -> int:
        """How many times each weight element is fetched from DRAM.

        With the output-stationary loop order (m, n, k) and the weight tile
        resident while all ``N`` activation tiles stream past it, every weight
        element is fetched exactly once per pass over ``N`` -- i.e. once, as
        long as the tile fits on chip.
        """
        return 1 if self.weight_tile_fits() else self.tiles_n

    def activation_dram_fetches(self) -> int:
        """How many times each activation element is fetched from DRAM.

        Activations are re-streamed once per weight-row tile because outputs
        are stationary.
        """
        return self.tiles_m

    def weight_reuse_factor(self) -> float:
        """MAC operations performed per fetched weight element."""
        return float(self.n)

    def summary(self, bits: int = 8) -> Dict[str, float]:
        return {
            "tiles_m": self.tiles_m,
            "tiles_k": self.tiles_k,
            "tiles_n": self.tiles_n,
            "total_tiles": self.total_tiles,
            "weight_tile_kb": self.weight_tile_bytes(bits) / 1024.0,
            "weight_tile_fits": float(self.weight_tile_fits(bits=bits)),
            "weight_dram_fetches": self.weight_dram_fetches(),
            "activation_dram_fetches": self.activation_dram_fetches(),
            "weight_reuse_factor": self.weight_reuse_factor(),
        }


def plan_gemm_tiling(
    m: int, k: int, n: int, config: TileConfig | None = None
) -> GemmTiling:
    """Build a :class:`GemmTiling` for an ``(M, K) x (K, N)`` integer GEMM."""
    if min(m, k, n) < 1:
        raise ValueError("GEMM dimensions must be positive")
    return GemmTiling(m=m, k=k, n=n, config=config or TileConfig())
