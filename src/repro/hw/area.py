"""Area and power breakdown models of the MCBP accelerator (paper Fig. 22, Table 3).

The paper reports the prototype's total area (9.52 mm^2 at TSMC 28 nm) and
power (2.395 W including HBM) together with per-component percentage
breakdowns.  These models reproduce those breakdowns and expose per-component
figures that the hardware-ablation study (Fig. 24b) composes incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .constants import MCBP_HW_CONFIG, MCBPHardwareConfig

__all__ = [
    "AreaBreakdown",
    "PowerBreakdown",
    "mcbp_area_breakdown",
    "mcbp_power_breakdown",
    "AREA_FRACTIONS",
    "CORE_POWER_FRACTIONS",
    "TOTAL_POWER_FRACTIONS",
]

# Fractions published in Fig. 22(a) -- total area 9.52 mm^2.
AREA_FRACTIONS: Dict[str, float] = {
    "brcr_unit": 0.382,
    "sram": 0.191,
    "apu": 0.184,
    "scheduler": 0.134,
    "bstc_unit": 0.062,
    "bgpp_unit": 0.045,
}

# Fractions of the *core* power (Fig. 22(b), inner ring: core part is 37.3 %
# of the 2.395 W total).
CORE_POWER_FRACTIONS: Dict[str, float] = {
    "brcr_unit": 0.447,
    "sram": 0.220,
    "apu": 0.117,
    "bstc_unit": 0.102,
    "bgpp_unit": 0.082,
    "scheduler": 0.041,
}

# Top-level power split (Fig. 22(b) outer ring).
TOTAL_POWER_FRACTIONS: Dict[str, float] = {
    "dram": 0.476,
    "core": 0.373,
    "memory_interface": 0.151,
}


@dataclass
class AreaBreakdown:
    """Component areas in mm^2."""

    components: Dict[str, float]
    total_mm2: float

    def fraction(self, name: str) -> float:
        return self.components[name] / self.total_mm2


@dataclass
class PowerBreakdown:
    """Component powers in watts."""

    components: Dict[str, float]
    total_w: float

    def fraction(self, name: str) -> float:
        return self.components[name] / self.total_w

    @property
    def core_w(self) -> float:
        return sum(
            v for k, v in self.components.items()
            if k not in ("dram", "memory_interface")
        )


def mcbp_area_breakdown(config: MCBPHardwareConfig = MCBP_HW_CONFIG) -> AreaBreakdown:
    """Per-component silicon area of the MCBP prototype."""
    components = {
        name: frac * config.area_mm2 for name, frac in AREA_FRACTIONS.items()
    }
    return AreaBreakdown(components=components, total_mm2=config.area_mm2)


def mcbp_power_breakdown(config: MCBPHardwareConfig = MCBP_HW_CONFIG) -> PowerBreakdown:
    """Per-component power of the MCBP prototype including DRAM and PHY."""
    total = config.total_power_w
    dram = TOTAL_POWER_FRACTIONS["dram"] * total
    interface = TOTAL_POWER_FRACTIONS["memory_interface"] * total
    core = TOTAL_POWER_FRACTIONS["core"] * total
    components = {name: frac * core for name, frac in CORE_POWER_FRACTIONS.items()}
    components["dram"] = dram
    components["memory_interface"] = interface
    return PowerBreakdown(components=components, total_w=total)
