"""Sparsity and repetitiveness metrics (paper §2.3, Fig. 5, Fig. 25).

These helpers quantify the two bit-level opportunities MCBP exploits:

* **BS sparsity** -- the fraction of zero bits in each bit-slice plane of a
  sign-magnitude weight matrix, far higher than value-level sparsity for
  near-Gaussian weights;
* **BS repetitiveness** -- the fraction of repeated column vectors inside an
  ``m``-row group matrix, which BRCR turns into merged additions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.bitslice import BitSliceTensor, mean_bit_sparsity, value_sparsity
from ..core.brcr import column_codes

__all__ = [
    "SparsityReport",
    "sparsity_report",
    "plane_sparsity_profile",
    "repetition_ratio",
    "repeated_column_fraction",
    "sparsity_comparison_table",
]


@dataclass
class SparsityReport:
    """Value- and bit-level sparsity summary of one integer weight matrix."""

    value_sparsity: float
    bit_sparsity: float
    plane_sparsity: List[float]
    bits: int

    @property
    def bit_over_value_ratio(self) -> float:
        if self.value_sparsity <= 0:
            return float("inf") if self.bit_sparsity > 0 else 1.0
        return self.bit_sparsity / self.value_sparsity


def sparsity_report(weights_q: np.ndarray, bits: int = 8) -> SparsityReport:
    """Compute the value sparsity and per-plane bit sparsity of integer weights."""
    weights_q = np.asarray(weights_q)
    tensor = BitSliceTensor.from_values(weights_q, bits=bits, fmt="sign_magnitude")
    planes = tensor.plane_sparsity()
    return SparsityReport(
        value_sparsity=value_sparsity(weights_q),
        bit_sparsity=float(np.mean(planes[:-1])) if len(planes) > 1 else 0.0,
        plane_sparsity=planes,
        bits=bits,
    )


def plane_sparsity_profile(weights_q: np.ndarray, bits: int = 8) -> Dict[str, float]:
    """Per-bit-position sparsity keyed ``"1st BS"`` (LSB) .. ``"sign"`` (paper Fig. 8c)."""
    report = sparsity_report(weights_q, bits=bits)

    def _ordinal(i: int) -> str:
        suffix = {1: "st", 2: "nd", 3: "rd"}.get(i if i < 20 else i % 10, "th")
        return f"{i}{suffix} BS"

    profile = {
        _ordinal(i + 1): report.plane_sparsity[i] for i in range(bits - 1)
    }
    profile["sign"] = report.plane_sparsity[-1]
    profile["mean"] = report.bit_sparsity
    profile["value"] = report.value_sparsity
    return profile


def repeated_column_fraction(plane: np.ndarray, group_size: int = 4) -> float:
    """Fraction of group-matrix columns that duplicate an earlier column.

    Higher values mean BRCR can merge more additions.  Matches the paper's
    observation that the fraction grows rapidly as the group size shrinks
    (pigeonhole, Fig. 5a).
    """
    plane = np.asarray(plane)
    rows, cols = plane.shape
    if cols == 0:
        return 0.0
    repeated = 0
    total = 0
    for start in range(0, rows, group_size):
        group = plane[start : start + group_size]
        codes = column_codes(group)
        unique = np.unique(codes).size
        repeated += codes.size - unique
        total += codes.size
    return repeated / total if total else 0.0


def repetition_ratio(weights_q: np.ndarray, group_size: int = 4, bits: int = 8) -> float:
    """Average repeated-column fraction across all magnitude bit planes."""
    tensor = BitSliceTensor.from_values(
        np.asarray(weights_q), bits=bits, fmt="sign_magnitude"
    )
    fractions = [
        repeated_column_fraction(plane, group_size=group_size)
        for plane in tensor.magnitude_slices
    ]
    return float(np.mean(fractions)) if fractions else 0.0


def sparsity_comparison_table(
    weight_sets: Dict[str, np.ndarray], bits: int = 8
) -> Dict[str, Dict[str, float]]:
    """Value vs bit sparsity per named model (paper Fig. 5d / Fig. 25b).

    ``weight_sets`` maps a model name to a representative integer weight
    matrix; the result maps each name to value sparsity, mean bit sparsity and
    their ratio.
    """
    table: Dict[str, Dict[str, float]] = {}
    for name, weights in weight_sets.items():
        report = sparsity_report(weights, bits=bits)
        table[name] = {
            "value_sparsity": report.value_sparsity,
            "bit_sparsity": report.bit_sparsity,
            "ratio": report.bit_over_value_ratio,
        }
    if table:
        table["Mean"] = {
            "value_sparsity": float(
                np.mean([v["value_sparsity"] for v in table.values()])
            ),
            "bit_sparsity": float(
                np.mean([v["bit_sparsity"] for v in table.values()])
            ),
            "ratio": float(np.mean([
                v["ratio"] for v in table.values() if np.isfinite(v["ratio"])
            ])),
        }
    return table
