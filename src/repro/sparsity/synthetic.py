"""Synthetic weight and activation generation.

Pre-trained checkpoint downloads are unavailable in this environment, so the
statistics the paper measures on Llama/OPT/Bloom/Qwen weights are reproduced
on synthetic tensors drawn from the same family of distributions: quantised
LLM weights are near-Gaussian (paper §2.3 and Fig. 25a), which is exactly what
gives the high-order bit planes their sparsity.  Activations are modelled as a
Gaussian bulk plus a small fraction of large-magnitude outliers, mirroring the
outlier structure reported by LLM.int8/SmoothQuant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "WeightDistribution",
    "gaussian_weights",
    "gaussian_int_weights",
    "activation_matrix",
    "attention_logits",
]


@dataclass
class WeightDistribution:
    """Parameters of the synthetic float weight distribution.

    ``std`` controls the spread relative to the quantisation range; typical
    transformer weights have a standard deviation of a few percent of their
    maximum magnitude, which after symmetric INT8 quantisation yields the
    ~70 % average magnitude-plane sparsity the paper reports.
    """

    std: float = 0.02
    outlier_fraction: float = 0.002
    outlier_scale: float = 8.0


def gaussian_weights(
    shape: Tuple[int, ...],
    distribution: Optional[WeightDistribution] = None,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Draw float weights with a Gaussian bulk and a small outlier tail."""
    distribution = distribution or WeightDistribution()
    rng = np.random.default_rng(seed)
    weights = rng.normal(0.0, distribution.std, size=shape)
    if distribution.outlier_fraction > 0:
        mask = rng.random(shape) < distribution.outlier_fraction
        outliers = rng.normal(
            0.0, distribution.std * distribution.outlier_scale, size=shape
        )
        weights = np.where(mask, outliers, weights)
    return weights


def gaussian_int_weights(
    shape: Tuple[int, ...],
    bits: int = 8,
    distribution: Optional[WeightDistribution] = None,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Draw integer weights as per-channel symmetric quantisation of Gaussian floats.

    The result matches the value/bit sparsity structure of PTQ-quantised LLM
    weights: very few exact zeros at value level but dominant zeros in the
    high-order magnitude planes.
    """
    from ..quant.schemes import quantize_weight_per_channel

    floats = gaussian_weights(shape, distribution=distribution, seed=seed)
    q, _ = quantize_weight_per_channel(floats, bits=bits, channel_axis=0)
    return q


def activation_matrix(
    shape: Tuple[int, ...],
    std: float = 1.0,
    outlier_fraction: float = 0.01,
    outlier_scale: float = 10.0,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Synthetic float activations: Gaussian bulk plus channel-wise outliers."""
    rng = np.random.default_rng(seed)
    x = rng.normal(0.0, std, size=shape)
    if outlier_fraction > 0 and len(shape) >= 1:
        n_channels = shape[-1]
        n_outlier_channels = max(1, int(round(n_channels * outlier_fraction)))
        channels = rng.choice(n_channels, size=n_outlier_channels, replace=False)
        x[..., channels] *= outlier_scale
    return x


def attention_logits(
    seq_len: int,
    n_keys: Optional[int] = None,
    concentration: float = 3.0,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Synthetic attention logits with realistic token-importance skew.

    A handful of keys per query receive large logits while the bulk sit near
    zero, producing the post-softmax sparsity that top-k predictors exploit.
    ``concentration`` controls how peaked the distribution is.
    """
    rng = np.random.default_rng(seed)
    n_keys = n_keys or seq_len
    base = rng.normal(0.0, 1.0, size=(seq_len, n_keys))
    important = rng.random((seq_len, n_keys)) < (8.0 / max(n_keys, 8))
    boost = rng.gamma(shape=2.0, scale=concentration, size=(seq_len, n_keys))
    return base + np.where(important, boost, 0.0)
