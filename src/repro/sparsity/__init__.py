"""Sparsity/repetitiveness analysis and synthetic weight generation."""

from .metrics import (
    SparsityReport,
    plane_sparsity_profile,
    repeated_column_fraction,
    repetition_ratio,
    sparsity_comparison_table,
    sparsity_report,
)
from .synthetic import (
    WeightDistribution,
    activation_matrix,
    attention_logits,
    gaussian_int_weights,
    gaussian_weights,
)

__all__ = [
    "SparsityReport",
    "sparsity_report",
    "plane_sparsity_profile",
    "repeated_column_fraction",
    "repetition_ratio",
    "sparsity_comparison_table",
    "WeightDistribution",
    "gaussian_weights",
    "gaussian_int_weights",
    "activation_matrix",
    "attention_logits",
]
